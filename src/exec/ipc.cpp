#include "exec/ipc.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "exec/wire_codec.hpp"

namespace occm::exec {

namespace {

using wire::putString;
using wire::putU32;
using wire::putU64;
using wire::putU8;
using wire::Reader;

}  // namespace

std::string IpcError::message() const {
  std::string out = "corrupt ipc frame (";
  out += truncated ? "truncated" : "invalid";
  out += ") at byte ";
  out += std::to_string(byteOffset);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::string encodeChildMessage(const ChildMessage& message) {
  std::string out;
  putU8(out, static_cast<std::uint8_t>(message.kind));
  switch (message.kind) {
    case ChildMessage::Kind::kProfile:
      wire::putProfile(out, message.profile);
      break;
    case ChildMessage::Kind::kException:
      putString(out, message.error);
      break;
    case ChildMessage::Kind::kAborted:
      putString(out, message.error);
      putU8(out, message.abortReason);
      putU64(out, message.abortCycle);
      break;
  }
  return out;
}

Expected<ChildMessage, IpcError> decodeChildMessage(std::string_view payload) {
  Reader in(payload);
  ChildMessage message;
  const std::uint8_t kind = in.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(ChildMessage::Kind::kProfile):
      message.kind = ChildMessage::Kind::kProfile;
      message.profile = wire::readProfile(in);
      break;
    case static_cast<std::uint8_t>(ChildMessage::Kind::kException):
      message.kind = ChildMessage::Kind::kException;
      message.error = in.str();
      break;
    case static_cast<std::uint8_t>(ChildMessage::Kind::kAborted):
      message.kind = ChildMessage::Kind::kAborted;
      message.error = in.str();
      message.abortReason = in.u8();
      message.abortCycle = in.u64();
      break;
    default:
      if (in.ok()) {
        in.fail("unknown message kind " + std::to_string(kind));
      }
      break;
  }
  if (in.ok() && !in.atEnd()) {
    in.fail("trailing bytes after the message");
  }
  if (!in.ok()) {
    return makeUnexpected(in.error());
  }
  return message;
}

std::string encodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + kFrameOverhead);
  out.append(kFrameMagic, sizeof kFrameMagic);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  putU32(out, crc32(payload));
  return out;
}

Expected<std::string, IpcError> decodeFrame(std::string_view bytes) {
  auto fail = [](std::size_t offset, std::string detail, bool truncated) {
    IpcError err;
    err.byteOffset = offset;
    err.detail = std::move(detail);
    err.truncated = truncated;
    return makeUnexpected(std::move(err));
  };
  if (bytes.size() < kFrameOverhead) {
    return fail(bytes.size(),
                "frame shorter than its fixed overhead (" +
                    std::to_string(kFrameOverhead) + " bytes)",
                true);
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof kFrameMagic) != 0) {
    return fail(0, "bad frame magic", false);
  }
  Reader header(bytes.substr(4, 4));
  const std::uint32_t length = header.u32();
  if (bytes.size() != kFrameOverhead + length) {
    const bool truncated = bytes.size() < kFrameOverhead + length;
    return fail(4,
                "frame length field says " + std::to_string(length) +
                    " payload bytes but " +
                    std::to_string(bytes.size() - kFrameOverhead) +
                    " are present",
                truncated);
  }
  const std::string_view payload = bytes.substr(8, length);
  Reader trailer(bytes.substr(8 + length, 4));
  const std::uint32_t storedCrc = trailer.u32();
  const std::uint32_t computed = crc32(payload);
  if (storedCrc != computed) {
    return fail(8 + length, "payload crc mismatch", false);
  }
  return std::string(payload);
}

}  // namespace occm::exec
