#include "exec/frame_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32.hpp"
#include "exec/wire_codec.hpp"

namespace occm::exec {

namespace {

std::string errnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Milliseconds left until `deadline`; -1 for "no deadline".
int remainingMs(std::chrono::steady_clock::time_point deadline, bool armed) {
  if (!armed) {
    return -1;
  }
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

}  // namespace

void FrameReassembler::poison(std::size_t offsetInFrame,
                              const std::string& detail, bool truncated) {
  corrupt_ = true;
  error_.byteOffset = consumed_ + offsetInFrame;
  error_.detail = detail;
  error_.truncated = truncated;
}

bool FrameReassembler::feed(std::string_view bytes) {
  if (corrupt_) {
    return false;
  }
  buffer_.append(bytes.data(), bytes.size());
  for (;;) {
    if (buffer_.size() < kFrameHeaderSize) {
      return true;  // wait for a full header
    }
    if (std::memcmp(buffer_.data(), kFrameMagic, sizeof kFrameMagic) != 0) {
      poison(0, "bad frame magic", false);
      return false;
    }
    wire::Reader header(
        std::string_view(buffer_).substr(sizeof kFrameMagic, 4));
    const std::uint32_t length = header.u32();
    if (length > maxPayload_) {
      poison(4,
             "frame length " + std::to_string(length) + " exceeds the " +
                 std::to_string(maxPayload_) + "-byte cap",
             false);
      return false;
    }
    const std::size_t total = kFrameOverhead + length;
    if (buffer_.size() < total) {
      return true;  // wait for the rest of this frame
    }
    const std::string_view payload =
        std::string_view(buffer_).substr(kFrameHeaderSize, length);
    wire::Reader trailer(
        std::string_view(buffer_).substr(kFrameHeaderSize + length, 4));
    const std::uint32_t storedCrc = trailer.u32();
    if (storedCrc != crc32(payload)) {
      poison(kFrameHeaderSize + length, "payload crc mismatch", false);
      return false;
    }
    ready_.emplace_back(payload);
    ++framesExtracted_;
    buffer_.erase(0, total);
    consumed_ += total;
  }
}

std::optional<std::string> FrameReassembler::next() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  std::string out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

FdFrameTransport::FdFrameTransport(int readFd, int writeFd, bool isSocket)
    : readFd_(readFd), writeFd_(writeFd), isSocket_(isSocket) {}

FdFrameTransport::~FdFrameTransport() {
  if (readFd_ >= 0) {
    ::close(readFd_);
  }
  if (writeFd_ >= 0 && writeFd_ != readFd_) {
    ::close(writeFd_);
  }
}

bool sendAllBytes(int fd, std::string_view bytes, bool isSocket,
                  int unwritableTimeoutMs) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n;
    if (isSocket) {
      n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    } else {
      n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;  // a signal landed mid-write; the transfer must survive
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full buffer: wait for drain, bounded — a
        // peer that stays unwritable for the whole window is as good as
        // dead. The poll itself restarts on EINTR.
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        int rc;
        do {
          rc = ::poll(&pfd, 1, unwritableTimeoutMs);
        } while (rc < 0 && errno == EINTR);
        if (rc <= 0) {
          return false;
        }
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdFrameTransport::sendFrame(std::string_view payload) {
  const std::string frame = encodeFrame(payload);
  if (!sendAllBytes(writeFd_, frame, isSocket_)) {
    lastError_ = errnoString("send");
    return false;
  }
  return true;
}

FrameTransport::RecvStatus FdFrameTransport::recvFrame(std::string& payload,
                                                       int timeoutMs) {
  if (auto frame = reassembler_.next()) {
    payload = std::move(*frame);
    return RecvStatus::kFrame;
  }
  const bool armed = timeoutMs >= 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  char chunk[4096];
  for (;;) {
    struct pollfd pfd;
    pfd.fd = readFd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, remainingMs(deadline, armed));
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      lastError_ = errnoString("poll");
      return RecvStatus::kError;
    }
    if (rc == 0) {
      return RecvStatus::kTimeout;
    }
    const ssize_t n = ::read(readFd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      lastError_ = errnoString("read");
      return RecvStatus::kError;
    }
    if (n == 0) {
      return RecvStatus::kClosed;
    }
    rxBytes_ += static_cast<std::uint64_t>(n);
    if (!reassembler_.feed(
            std::string_view(chunk, static_cast<std::size_t>(n)))) {
      lastError_ = reassembler_.error().message();
      return RecvStatus::kCorrupt;
    }
    if (auto frame = reassembler_.next()) {
      payload = std::move(*frame);
      return RecvStatus::kFrame;
    }
  }
}

std::unique_ptr<FrameTransport> makePipeTransport(int readFd, int writeFd) {
  return std::make_unique<FdFrameTransport>(readFd, writeFd,
                                            /*isSocket=*/false);
}

std::unique_ptr<FrameTransport> makeSocketTransport(int fd) {
  return std::make_unique<FdFrameTransport>(fd, fd, /*isSocket=*/true);
}

Expected<int, std::string> listenTcp(const std::string& host, int port,
                                     int* boundPort) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return makeUnexpected(errnoString("socket"));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return makeUnexpected("bad listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = errnoString("bind");
    ::close(fd);
    return makeUnexpected(err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = errnoString("listen");
    ::close(fd);
    return makeUnexpected(err);
  }
  if (boundPort != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *boundPort = ntohs(bound.sin_port);
    }
  }
  return fd;
}

Expected<int, std::string> connectTcp(const std::string& host, int port,
                                      int timeoutMs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return makeUnexpected(errnoString("socket"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return makeUnexpected("bad connect address '" + host + "'");
  }
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the framed exchange.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    const std::string err = errnoString("connect");
    ::close(fd);
    return makeUnexpected(err);
  }
  if (rc < 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    do {
      rc = ::poll(&pfd, 1, timeoutMs);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      ::close(fd);
      return makeUnexpected(rc == 0 ? std::string("connect timed out")
                                    : errnoString("poll"));
    }
    int soError = 0;
    socklen_t len = sizeof soError;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) < 0 ||
        soError != 0) {
      ::close(fd);
      return makeUnexpected("connect failed: " +
                            std::string(std::strerror(soError)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace occm::exec
