#include "exec/process_runner.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OCCM_HAS_FORK 1
#else
#define OCCM_HAS_FORK 0
#endif

#if OCCM_HAS_FORK
#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <new>
#include <thread>

#include "common/error.hpp"
#include "exec/ipc.hpp"
#include "fault/crash_injection.hpp"

namespace occm::exec {

bool processIsolationSupported() noexcept { return OCCM_HAS_FORK != 0; }

#if OCCM_HAS_FORK

namespace {

/// Hard cap on the bytes the supervisor will buffer from the result pipe:
/// a real profile is kilobytes; anything past this is a protocol
/// violation, not a result.
constexpr std::size_t kMaxResultBytes = std::size_t{64} << 20;

/// Supervisor poll cadence while the child runs. Bounds how stale the
/// cancellation token can get before the SIGKILL lands.
constexpr int kPollMillis = 20;

/// new-handler installed in the child under a memory budget: allocation
/// failure must read as "the budget killed it", not as a generic
/// exception a retry might clear. Async-signal-shaped on purpose — plain
/// write(2) then abort; allocation has already failed, so nothing here
/// may allocate.
void oomAbortHandler() {
  const char prefix[] = "occm: allocation failed: ";
  // Failed writes change nothing about the abort; the marker is
  // best-effort diagnosis.
  ssize_t ignored = ::write(STDERR_FILENO, prefix, sizeof prefix - 1);
  ignored = ::write(STDERR_FILENO, fault::kOutOfMemoryMarker,
                    std::strlen(fault::kOutOfMemoryMarker));
  ignored = ::write(STDERR_FILENO, "\n", 1);
  static_cast<void>(ignored);
  std::abort();
}

void applyLimit(int resource, std::uint64_t value) {
  if (value == 0) {
    return;
  }
  struct rlimit limit;
  limit.rlim_cur = static_cast<rlim_t>(value);
  limit.rlim_max = static_cast<rlim_t>(value);
  // Best-effort: a host that refuses the limit still runs the work, just
  // unbudgeted (the supervisor's classification only triggers on death).
  ::setrlimit(resource, &limit);
}

bool writeAll(int fd, const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Child side: apply limits, run the work, frame the outcome, _exit.
/// Never returns to the caller's stack; _exit (not exit) skips atexit
/// handlers and parent-inherited stdio flushes.
[[noreturn]] void childMain(int resultFd,
                            const std::function<perf::RunProfile()>& work,
                            const ResourceLimits& limits) {
  applyLimit(RLIMIT_AS, limits.memoryBytes);
  applyLimit(RLIMIT_CPU, limits.cpuSeconds);
  if (limits.memoryBytes > 0) {
    std::set_new_handler(oomAbortHandler);
  }
  ChildMessage message;
  try {
    message.profile = work();
    message.kind = ChildMessage::Kind::kProfile;
  } catch (const RunAborted& aborted) {
    message.kind = ChildMessage::Kind::kAborted;
    message.error = aborted.what();
    message.abortReason = static_cast<std::uint8_t>(aborted.reason());
    message.abortCycle = aborted.atCycle();
  } catch (const std::exception& e) {
    message.kind = ChildMessage::Kind::kException;
    message.error = e.what();
  } catch (...) {
    message.kind = ChildMessage::Kind::kException;
    message.error = "unknown exception escaped the isolated run";
  }
  const std::string frame = encodeFrame(encodeChildMessage(message));
  writeAll(resultFd, frame);
  ::close(resultFd);
  ::_exit(0);
}

/// Non-printable bytes in a crash tail (sanitizer hex dumps, torn UTF-8)
/// become '.' so the tail embeds safely in JSON checkpoints and CSV.
std::string sanitizeTail(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '\n' || c == '\t' || (byte >= 0x20 && byte < 0x7F)) {
      out.push_back(c);
    } else {
      out.push_back('.');
    }
  }
  return out;
}

const char* signalName(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "signal";
  }
}

}  // namespace

ChildOutcome runInChild(const std::function<perf::RunProfile()>& work,
                        const ProcessRunnerConfig& config) {
  OCCM_REQUIRE_MSG(static_cast<bool>(work),
                   "runInChild needs a work function");
  int resultPipe[2];
  int errPipe[2];
  OCCM_REQUIRE_MSG(::pipe(resultPipe) == 0,
                   "pipe() failed for the isolation result channel");
  if (::pipe(errPipe) != 0) {
    ::close(resultPipe[0]);
    ::close(resultPipe[1]);
    throw ContractViolation("pipe() failed for the isolation stderr channel");
  }
  // fork() duplicates only the calling thread. The child runs the work
  // single-threaded and _exits, so inherited locks and pool state in
  // other threads never matter; glibc's atfork handlers keep malloc
  // usable in the child.
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(resultPipe[0]);
    ::close(resultPipe[1]);
    ::close(errPipe[0]);
    ::close(errPipe[1]);
    throw ContractViolation("fork() failed for the isolated attempt");
  }
  if (pid == 0) {
    ::close(resultPipe[0]);
    ::close(errPipe[0]);
    // The child's stderr *is* the capture channel; whatever the run (or
    // its death throes — sanitizer reports, abort messages) writes lands
    // in the supervisor's bounded tail.
    ::dup2(errPipe[1], STDERR_FILENO);
    ::close(errPipe[1]);
    childMain(resultPipe[1], work, config.limits);
  }

  ::close(resultPipe[1]);
  ::close(errPipe[1]);

  std::string resultBytes;
  std::string tail;
  bool resultOverflow = false;
  bool killedByUs = false;
  bool resultOpen = true;
  bool errOpen = true;

  auto killChild = [&] {
    if (!killedByUs) {
      ::kill(pid, SIGKILL);
      killedByUs = true;
    }
  };

  char buffer[4096];
  while (resultOpen || errOpen) {
    if (config.cancel.stopRequested()) {
      killChild();
    }
    struct pollfd fds[2];
    nfds_t count = 0;
    int resultIndex = -1;
    int errIndex = -1;
    if (resultOpen) {
      fds[count].fd = resultPipe[0];
      fds[count].events = POLLIN;
      fds[count].revents = 0;
      resultIndex = static_cast<int>(count++);
    }
    if (errOpen) {
      fds[count].fd = errPipe[0];
      fds[count].events = POLLIN;
      fds[count].revents = 0;
      errIndex = static_cast<int>(count++);
    }
    const int ready = ::poll(fds, count, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (ready == 0) {
      continue;
    }
    auto drain = [&](int index, bool* open, bool isResult) {
      if (index < 0 ||
          (fds[index].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        return;
      }
      const int fd = fds[index].fd;
      const ssize_t n = ::read(fd, buffer, sizeof buffer);
      if (n > 0) {
        const auto got = static_cast<std::size_t>(n);
        if (isResult) {
          if (resultBytes.size() + got > kMaxResultBytes) {
            resultOverflow = true;
          } else {
            resultBytes.append(buffer, got);
          }
        } else {
          tail.append(buffer, got);
          if (tail.size() > config.stderrTailBytes) {
            tail.erase(0, tail.size() - config.stderrTailBytes);
          }
        }
        return;
      }
      if (n == 0 || errno != EINTR) {
        *open = false;
      }
    };
    drain(resultIndex, &resultOpen, /*isResult=*/true);
    drain(errIndex, &errOpen, /*isResult=*/false);
  }
  ::close(resultPipe[0]);
  ::close(errPipe[0]);

  // Both pipes are at EOF, so the child is exiting (or already dead);
  // WNOHANG keeps the supervisor responsive to a late cancellation in
  // the window where a pathological child closed its fds but lingers.
  int status = 0;
  for (;;) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) {
      break;
    }
    if (reaped < 0 && errno != EINTR) {
      break;  // nothing left to reap (ECHILD); decode what we have
    }
    if (config.cancel.stopRequested()) {
      killChild();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMillis));
  }

  ChildOutcome outcome;
  outcome.stderrTail = sanitizeTail(tail);
  const bool exited = WIFEXITED(status);
  const bool signalled = WIFSIGNALED(status);
  const int exitCode = exited ? WEXITSTATUS(status) : -1;
  const int deathSignal = signalled ? WTERMSIG(status) : 0;

  if (exited && exitCode == 0 && !resultOverflow) {
    // Clean exit: the frame is authoritative.
    auto payload = decodeFrame(resultBytes);
    if (!payload) {
      outcome.status = ChildStatus::kCrash;
      outcome.exitCode = exitCode;
      outcome.error = "child exited cleanly but its result frame is "
                      "invalid: " + payload.error().message();
      return outcome;
    }
    auto message = decodeChildMessage(*payload);
    if (!message) {
      outcome.status = ChildStatus::kCrash;
      outcome.exitCode = exitCode;
      outcome.error = "child exited cleanly but its result message is "
                      "invalid: " + message.error().message();
      return outcome;
    }
    switch (message->kind) {
      case ChildMessage::Kind::kProfile:
        outcome.status = ChildStatus::kOk;
        outcome.profile = std::move(message->profile);
        break;
      case ChildMessage::Kind::kException:
        outcome.status = ChildStatus::kException;
        outcome.error = std::move(message->error);
        break;
      case ChildMessage::Kind::kAborted:
        outcome.status = ChildStatus::kAborted;
        outcome.error = std::move(message->error);
        outcome.abortReason =
            message->abortReason ==
                    static_cast<std::uint8_t>(AbortReason::kCycleBudget)
                ? AbortReason::kCycleBudget
                : AbortReason::kCancelled;
        outcome.abortCycle = message->abortCycle;
        break;
    }
    return outcome;
  }

  if (killedByUs) {
    outcome.status = ChildStatus::kKilled;
    outcome.signal = SIGKILL;
    outcome.error = "isolated run killed by the supervisor "
                    "(cancellation or deadline)";
    return outcome;
  }

  outcome.status = ChildStatus::kCrash;
  outcome.signal = deathSignal;
  outcome.exitCode = exitCode;
  if (deathSignal == SIGXCPU) {
    outcome.rlimit = "cpu";
  } else if (outcome.stderrTail.find(fault::kOutOfMemoryMarker) !=
             std::string::npos) {
    outcome.rlimit = "address-space";
  }
  if (resultOverflow) {
    outcome.error = "child flooded the result pipe past " +
                    std::to_string(kMaxResultBytes) + " bytes";
  } else if (signalled) {
    outcome.error = "child terminated by signal " +
                    std::to_string(deathSignal) + " (" +
                    signalName(deathSignal) + ")";
  } else {
    outcome.error =
        "child exited with status " + std::to_string(exitCode);
  }
  if (!outcome.rlimit.empty()) {
    outcome.error += " after exceeding its " + outcome.rlimit + " limit";
  }
  return outcome;
}

#else  // !OCCM_HAS_FORK

ChildOutcome runInChild(const std::function<perf::RunProfile()>& /*work*/,
                        const ProcessRunnerConfig& /*config*/) {
  throw ContractViolation(
      "process isolation (fork) is not supported on this platform");
}

#endif

}  // namespace occm::exec
