#include "exec/wire_codec.hpp"

#include <bit>

namespace occm::exec::wire {

void putU8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void putU32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>(
        static_cast<unsigned char>((value >> shift) & 0xFFU)));
  }
}

void putU64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>(
        static_cast<unsigned char>((value >> shift) & 0xFFU)));
  }
}

void putI32(std::string& out, std::int32_t value) {
  putU32(out, static_cast<std::uint32_t>(value));
}

void putF64(std::string& out, double value) {
  putU64(out, std::bit_cast<std::uint64_t>(value));
}

void putString(std::string& out, const std::string& value) {
  putU32(out, static_cast<std::uint32_t>(value.size()));
  out += value;
}

void Reader::fail(const std::string& detail, bool truncated) {
  if (!ok_) {
    return;
  }
  ok_ = false;
  error_.byteOffset = pos_;
  error_.detail = detail;
  error_.truncated = truncated;
}

std::uint8_t Reader::u8() {
  if (!need(1)) {
    return 0;
  }
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t Reader::u32() {
  if (!need(4)) {
    return 0;
  }
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_++]))
             << shift;
  }
  return value;
}

std::uint64_t Reader::u64() {
  if (!need(8)) {
    return 0;
  }
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_++]))
             << shift;
  }
  return value;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t length = u32();
  if (!ok_) {
    return {};
  }
  if (length > kMaxString) {
    fail("string length " + std::to_string(length) + " exceeds the " +
         std::to_string(kMaxString) + "-byte cap");
    return {};
  }
  if (!need(length)) {
    return {};
  }
  std::string out(bytes_.substr(pos_, length));
  pos_ += length;
  return out;
}

std::size_t Reader::count(const char* what) {
  const std::uint32_t value = u32();
  if (ok_ && value > kMaxCount) {
    fail(std::string(what) + " count " + std::to_string(value) +
         " exceeds the " + std::to_string(kMaxCount) + " cap");
    return 0;
  }
  return value;
}

bool Reader::need(std::size_t n) {
  if (!ok_) {
    return false;
  }
  if (bytes_.size() - pos_ < n) {
    fail("unexpected end of input", /*truncated=*/true);
    return false;
  }
  return true;
}

namespace {

void putCounterSet(std::string& out, const perf::CounterSet& set) {
  putU64(out, set.totalCycles);
  putU64(out, set.stallCycles);
  putU64(out, set.instructions);
  putU64(out, set.llcMisses);
}

perf::CounterSet readCounterSet(Reader& in) {
  perf::CounterSet set;
  set.totalCycles = in.u64();
  set.stallCycles = in.u64();
  set.instructions = in.u64();
  set.llcMisses = in.u64();
  return set;
}

void putControllerStats(std::string& out, const mem::ControllerStats& stats) {
  putU64(out, stats.requests);
  putU64(out, stats.writebacks);
  putU64(out, stats.remoteRequests);
  putU64(out, stats.rowHits);
  putU64(out, stats.rowMisses);
  putU64(out, stats.busyCycles);
  putU64(out, stats.totalWait);
  putU64(out, stats.totalService);
  putU64(out, stats.reroutedAway);
  putU64(out, stats.absorbed);
  putU64(out, stats.retryAttempts);
  putU64(out, stats.eccRetries);
  putU64(out, stats.background);
}

mem::ControllerStats readControllerStats(Reader& in) {
  mem::ControllerStats stats;
  stats.requests = in.u64();
  stats.writebacks = in.u64();
  stats.remoteRequests = in.u64();
  stats.rowHits = in.u64();
  stats.rowMisses = in.u64();
  stats.busyCycles = in.u64();
  stats.totalWait = in.u64();
  stats.totalService = in.u64();
  stats.reroutedAway = in.u64();
  stats.absorbed = in.u64();
  stats.retryAttempts = in.u64();
  stats.eccRetries = in.u64();
  stats.background = in.u64();
  return stats;
}

}  // namespace

void putProfile(std::string& out, const perf::RunProfile& profile) {
  putString(out, profile.program);
  putString(out, profile.machine);
  putI32(out, profile.threads);
  putI32(out, profile.activeCores);
  putCounterSet(out, profile.counters);
  putU32(out, static_cast<std::uint32_t>(profile.perCore.size()));
  for (const perf::CounterSet& set : profile.perCore) {
    putCounterSet(out, set);
  }
  putU64(out, profile.coherenceMisses);
  putU64(out, profile.writebacks);
  putU64(out, profile.contextSwitches);
  putU64(out, profile.makespan);
  putU32(out, static_cast<std::uint32_t>(profile.controllerStats.size()));
  for (const mem::ControllerStats& stats : profile.controllerStats) {
    putControllerStats(out, stats);
  }
  putI32(out, profile.channelsPerController);
  putU32(out, static_cast<std::uint32_t>(profile.missWindows.size()));
  for (const std::uint64_t window : profile.missWindows) {
    putU64(out, window);
  }
  putU64(out, profile.samplerWindowCycles);
  putU32(out, static_cast<std::uint32_t>(profile.faultEpochs.size()));
  for (const perf::FaultEpoch& epoch : profile.faultEpochs) {
    putString(out, epoch.kind);
    putI32(out, epoch.target);
    putU64(out, epoch.start);
    putU64(out, epoch.end);
    putF64(out, epoch.magnitude);
  }
  putU64(out, profile.reroutedRequests);
  putU64(out, profile.faultRetries);
  putU64(out, profile.backgroundRequests);
  putU64(out, profile.throttledCycles);
  putU64(out, profile.hotPath.eventsPopped);
  putU64(out, profile.hotPath.eventsPushed);
  putU64(out, profile.hotPath.maxEventQueueDepth);
  putU64(out, profile.hotPath.advanceTurns);
  putU64(out, profile.hotPath.issueTurns);
  putU64(out, profile.hotPath.controllerTicks);
}

perf::RunProfile readProfile(Reader& in) {
  perf::RunProfile profile;
  profile.program = in.str();
  profile.machine = in.str();
  profile.threads = in.i32();
  profile.activeCores = in.i32();
  profile.counters = readCounterSet(in);
  const std::size_t coreCount = in.count("perCore");
  for (std::size_t i = 0; in.ok() && i < coreCount; ++i) {
    profile.perCore.push_back(readCounterSet(in));
  }
  profile.coherenceMisses = in.u64();
  profile.writebacks = in.u64();
  profile.contextSwitches = in.u64();
  profile.makespan = in.u64();
  const std::size_t controllerCount = in.count("controllerStats");
  for (std::size_t i = 0; in.ok() && i < controllerCount; ++i) {
    profile.controllerStats.push_back(readControllerStats(in));
  }
  profile.channelsPerController = in.i32();
  const std::size_t windowCount = in.count("missWindows");
  for (std::size_t i = 0; in.ok() && i < windowCount; ++i) {
    profile.missWindows.push_back(in.u64());
  }
  profile.samplerWindowCycles = in.u64();
  const std::size_t epochCount = in.count("faultEpochs");
  for (std::size_t i = 0; in.ok() && i < epochCount; ++i) {
    perf::FaultEpoch epoch;
    epoch.kind = in.str();
    epoch.target = in.i32();
    epoch.start = in.u64();
    epoch.end = in.u64();
    epoch.magnitude = in.f64();
    profile.faultEpochs.push_back(std::move(epoch));
  }
  profile.reroutedRequests = in.u64();
  profile.faultRetries = in.u64();
  profile.backgroundRequests = in.u64();
  profile.throttledCycles = in.u64();
  profile.hotPath.eventsPopped = in.u64();
  profile.hotPath.eventsPushed = in.u64();
  profile.hotPath.maxEventQueueDepth = in.u64();
  profile.hotPath.advanceTurns = in.u64();
  profile.hotPath.issueTurns = in.u64();
  profile.hotPath.controllerTicks = in.u64();
  return profile;
}

}  // namespace occm::exec::wire
