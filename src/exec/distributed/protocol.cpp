#include "exec/distributed/protocol.hpp"

#include "exec/wire_codec.hpp"

namespace occm::exec::dist {

namespace {

using topology::CacheLevelSpec;
using topology::MachineSpec;
using wire::putF64;
using wire::putI32;
using wire::putString;
using wire::putU32;
using wire::putU64;
using wire::putU8;
using wire::Reader;

void putBool(std::string& out, bool value) {
  putU8(out, value ? 1 : 0);
}

bool readBool(Reader& in, const char* what) {
  const std::uint8_t value = in.u8();
  if (in.ok() && value > 1) {
    in.fail(std::string(what) + " flag is " + std::to_string(value) +
            ", expected 0 or 1");
  }
  return value == 1;
}

/// Reads an enum stored as u8 and range-checks it against `maxValue`.
std::uint8_t readEnum(Reader& in, const char* what, std::uint8_t maxValue) {
  const std::uint8_t value = in.u8();
  if (in.ok() && value > maxValue) {
    in.fail(std::string(what) + " value " + std::to_string(value) +
            " out of range (max " + std::to_string(maxValue) + ")");
  }
  return value;
}

void putMachine(std::string& out, const MachineSpec& m) {
  putString(out, m.name);
  putF64(out, m.clockGhz);
  putI32(out, m.sockets);
  putI32(out, m.diesPerSocket);
  putI32(out, m.coresPerDie);
  putI32(out, m.smtPerCore);
  putU32(out, static_cast<std::uint32_t>(m.caches.size()));
  for (const CacheLevelSpec& c : m.caches) {
    putI32(out, c.level);
    putU64(out, c.size);
    putU64(out, c.lineSize);
    putU32(out, c.associativity);
    putU64(out, c.hitLatency);
    putU8(out, static_cast<std::uint8_t>(c.scope));
  }
  putU8(out, static_cast<std::uint8_t>(m.memoryArchitecture));
  putU8(out, static_cast<std::uint8_t>(m.controllerScope));
  putI32(out, m.channelsPerController);
  putU64(out, m.dramLatency);
  putU64(out, m.rowHitServiceCycles);
  putU64(out, m.rowMissServiceCycles);
  putU64(out, m.rowBytes);
  putI32(out, m.banksPerChannel);
  putI32(out, m.prefetchMlp);
  putU64(out, m.busServiceCycles);
  putU64(out, m.hopCycles);
  putU64(out, m.linkServiceCycles);
  putU32(out, static_cast<std::uint32_t>(m.hopMatrix.size()));
  for (const std::vector<int>& row : m.hopMatrix) {
    putU32(out, static_cast<std::uint32_t>(row.size()));
    for (int hop : row) {
      putI32(out, hop);
    }
  }
  putI32(out, m.corePerMlp);
  putU64(out, m.pageSize);
  putF64(out, m.scaleFactor);
}

MachineSpec readMachine(Reader& in) {
  MachineSpec m;
  m.name = in.str();
  m.clockGhz = in.f64();
  m.sockets = in.i32();
  m.diesPerSocket = in.i32();
  m.coresPerDie = in.i32();
  m.smtPerCore = in.i32();
  const std::size_t cacheCount = in.count("cache levels");
  m.caches.clear();
  m.caches.reserve(in.ok() ? cacheCount : 0);
  for (std::size_t i = 0; in.ok() && i < cacheCount; ++i) {
    CacheLevelSpec c;
    c.level = in.i32();
    c.size = in.u64();
    c.lineSize = in.u64();
    c.associativity = in.u32();
    c.hitLatency = in.u64();
    c.scope = static_cast<topology::CacheScope>(readEnum(
        in, "cache scope",
        static_cast<std::uint8_t>(topology::CacheScope::kMachine)));
    m.caches.push_back(c);
  }
  m.memoryArchitecture = static_cast<topology::MemoryArchitecture>(readEnum(
      in, "memory architecture",
      static_cast<std::uint8_t>(topology::MemoryArchitecture::kNuma)));
  m.controllerScope = static_cast<topology::ControllerScope>(readEnum(
      in, "controller scope",
      static_cast<std::uint8_t>(topology::ControllerScope::kPerDie)));
  m.channelsPerController = in.i32();
  m.dramLatency = in.u64();
  m.rowHitServiceCycles = in.u64();
  m.rowMissServiceCycles = in.u64();
  m.rowBytes = in.u64();
  m.banksPerChannel = in.i32();
  m.prefetchMlp = in.i32();
  m.busServiceCycles = in.u64();
  m.hopCycles = in.u64();
  m.linkServiceCycles = in.u64();
  const std::size_t rows = in.count("hop matrix rows");
  m.hopMatrix.clear();
  m.hopMatrix.reserve(in.ok() ? rows : 0);
  for (std::size_t r = 0; in.ok() && r < rows; ++r) {
    const std::size_t cols = in.count("hop matrix columns");
    std::vector<int> row;
    row.reserve(in.ok() ? cols : 0);
    for (std::size_t c = 0; in.ok() && c < cols; ++c) {
      row.push_back(in.i32());
    }
    m.hopMatrix.push_back(std::move(row));
  }
  m.corePerMlp = in.i32();
  m.pageSize = in.u64();
  m.scaleFactor = in.f64();
  return m;
}

void putJob(std::string& out, const JobSpec& job) {
  putU64(out, job.taskId);
  putI32(out, job.cores);
  putI32(out, job.maxAttempts);
  putString(out, job.program);
  putString(out, job.problemClass);
  putI32(out, job.threads);
  putU64(out, job.workloadSeed);
  putMachine(out, job.machine);
  putU64(out, job.schedQuantum);
  putU64(out, job.schedSwitchCost);
  putU8(out, job.memPlacement);
  putU8(out, job.memService);
  putU64(out, job.memSeed);
  putBool(out, job.enableSampler);
  putF64(out, job.samplerWindowNs);
  putU64(out, job.syncHorizon);
  putU64(out, job.cycleBudget);
  putU64(out, job.simSeed);
  putString(out, job.faultPlanJson);
}

JobSpec readJob(Reader& in) {
  JobSpec job;
  job.taskId = in.u64();
  job.cores = in.i32();
  job.maxAttempts = in.i32();
  job.program = in.str();
  job.problemClass = in.str();
  job.threads = in.i32();
  job.workloadSeed = in.u64();
  job.machine = readMachine(in);
  job.schedQuantum = in.u64();
  job.schedSwitchCost = in.u64();
  // Placement/service enums live in mem::, which exec does not name;
  // range bounds match mem::PlacementPolicy and mem::ServiceDiscipline
  // (re-validated by the analysis glue that rebuilds the SimConfig).
  job.memPlacement = readEnum(in, "placement policy", 3);
  job.memService = readEnum(in, "service discipline", 1);
  job.memSeed = in.u64();
  job.enableSampler = readBool(in, "sampler");
  job.samplerWindowNs = in.f64();
  job.syncHorizon = in.u64();
  job.cycleBudget = in.u64();
  job.simSeed = in.u64();
  job.faultPlanJson = in.str();
  return job;
}

void putFailure(std::string& out, const TaskFailure& failure) {
  putU8(out, static_cast<std::uint8_t>(failure.kind));
  putI32(out, failure.attempts);
  putBool(out, failure.recovered);
  putString(out, failure.error);
  putI32(out, failure.signal);
  putString(out, failure.rlimit);
  putString(out, failure.stderrTail);
}

TaskFailure readFailure(Reader& in) {
  TaskFailure failure;
  failure.kind = static_cast<WireFailureKind>(readEnum(
      in, "failure kind",
      static_cast<std::uint8_t>(WireFailureKind::kCrash)));
  failure.attempts = in.i32();
  failure.recovered = readBool(in, "recovered");
  failure.error = in.str();
  failure.signal = in.i32();
  failure.rlimit = in.str();
  failure.stderrTail = in.str();
  return failure;
}

void putResult(std::string& out, const TaskResult& result) {
  putU64(out, result.taskId);
  putBool(out, result.hasProfile);
  if (result.hasProfile) {
    wire::putProfile(out, result.profile);
  }
  putBool(out, result.hasFailure);
  if (result.hasFailure) {
    putFailure(out, result.failure);
  }
}

TaskResult readResult(Reader& in) {
  TaskResult result;
  result.taskId = in.u64();
  result.hasProfile = readBool(in, "has-profile");
  if (in.ok() && result.hasProfile) {
    result.profile = wire::readProfile(in);
  }
  result.hasFailure = readBool(in, "has-failure");
  if (in.ok() && result.hasFailure) {
    result.failure = readFailure(in);
  }
  return result;
}

}  // namespace

std::string encodeMessage(const WireMessage& message) {
  std::string out;
  putU8(out, static_cast<std::uint8_t>(message.kind));
  switch (message.kind) {
    case WireMessage::Kind::kHello:
      putU32(out, message.protocolVersion);
      putString(out, message.workerId);
      break;
    case WireMessage::Kind::kWelcome:
      putU32(out, message.protocolVersion);
      break;
    case WireMessage::Kind::kReject:
    case WireMessage::Kind::kShutdown:
      putString(out, message.reason);
      break;
    case WireMessage::Kind::kAssign:
      putJob(out, message.job);
      break;
    case WireMessage::Kind::kResult:
      putResult(out, message.result);
      break;
    case WireMessage::Kind::kPing:
    case WireMessage::Kind::kPong:
      putU64(out, message.pingId);
      putU64(out, message.pingSentNs);
      break;
  }
  return out;
}

Expected<WireMessage, IpcError> decodeMessage(std::string_view payload) {
  Reader in(payload);
  WireMessage message;
  const std::uint8_t kind = in.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(WireMessage::Kind::kHello):
      message.kind = WireMessage::Kind::kHello;
      message.protocolVersion = in.u32();
      message.workerId = in.str();
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kWelcome):
      message.kind = WireMessage::Kind::kWelcome;
      message.protocolVersion = in.u32();
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kReject):
      message.kind = WireMessage::Kind::kReject;
      message.reason = in.str();
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kShutdown):
      message.kind = WireMessage::Kind::kShutdown;
      message.reason = in.str();
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kAssign):
      message.kind = WireMessage::Kind::kAssign;
      message.job = readJob(in);
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kResult):
      message.kind = WireMessage::Kind::kResult;
      message.result = readResult(in);
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kPing):
      message.kind = WireMessage::Kind::kPing;
      message.pingId = in.u64();
      message.pingSentNs = in.u64();
      break;
    case static_cast<std::uint8_t>(WireMessage::Kind::kPong):
      message.kind = WireMessage::Kind::kPong;
      message.pingId = in.u64();
      message.pingSentNs = in.u64();
      break;
    default:
      if (in.ok()) {
        in.fail("unknown message kind " + std::to_string(kind));
      }
      break;
  }
  if (in.ok() && !in.atEnd()) {
    in.fail("trailing bytes after the message");
  }
  if (!in.ok()) {
    return makeUnexpected(in.error());
  }
  return message;
}

}  // namespace occm::exec::dist
