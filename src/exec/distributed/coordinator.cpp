#include "exec/distributed/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "exec/frame_transport.hpp"
#include "exec/ipc.hpp"

namespace occm::exec::dist {

namespace {

std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One connected peer, wrapped in its framed transport (the injection
/// point for the chaos layer). Sends are small (the largest frame is one
/// kAssign) and pushed through a bounded retry loop, so the loop never
/// parks on a single slow peer for long.
struct Connection {
  int fd = -1;  ///< poll handle; owned by the transport
  std::unique_ptr<FrameTransport> transport;
  std::string workerId;       ///< empty until the handshake completes
  bool handshaken = false;
  std::uint64_t connectedAtMs = 0;
  std::uint64_t lastPingSentMs = 0;
  std::uint64_t pingId = 0;
  /// Tasks currently assigned on this connection (a worker runs one task
  /// at a time; duplicates via speculation go to *other* workers).
  std::vector<std::uint64_t> assigned;
  bool dead = false;  ///< marked for teardown at the end of the iteration
};

bool sendMessage(Connection& conn, const WireMessage& message) {
  if (conn.dead) {
    return false;
  }
  if (!conn.transport->sendFrame(encodeMessage(message))) {
    conn.dead = true;
    return false;
  }
  return true;
}

}  // namespace

CoordinatorReport runCoordinator(const CoordinatorConfig& config,
                                 const std::vector<JobSpec>& jobs) {
  OCCM_REQUIRE_MSG(static_cast<bool>(config.onResult),
                   "coordinator needs an onResult sink");
  CoordinatorReport report;
  int boundPort = 0;
  auto listened = listenTcp(config.host, config.port, &boundPort);
  if (!listened) {
    report.error = listened.error();
    report.degradedToLocal = true;
    return report;
  }
  const int listenFd = *listened;
  // Non-blocking accepts: the drain loop below must stop at EAGAIN, not
  // park the whole event loop inside accept(2).
  const int listenFlags = ::fcntl(listenFd, F_GETFL, 0);
  ::fcntl(listenFd, F_SETFL, listenFlags | O_NONBLOCK);
  if (config.onListening) {
    config.onListening(boundPort);
  }

  const auto start = std::chrono::steady_clock::now();
  auto nowMs = [&start]() -> std::uint64_t {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  LeaseTable leases(config.lease, jobs.size());
  std::map<int, std::unique_ptr<Connection>> conns;  // by fd
  std::vector<bool> settled(jobs.size(), false);
  std::uint64_t nextConnectionId = 0;

  obs::TimeSeries* aliveGauge = nullptr;
  obs::TimeSeries* expiredGauge = nullptr;
  obs::TimeSeries* redispatchGauge = nullptr;
  obs::TimeSeries* rttGauge = nullptr;
  if (config.metrics != nullptr) {
    aliveGauge = &config.metrics->gauge("dist.workers.alive", "workers");
    expiredGauge = &config.metrics->gauge("dist.leases.expired", "leases");
    redispatchGauge = &config.metrics->gauge("dist.redispatches", "tasks");
    rttGauge = &config.metrics->gauge("dist.heartbeat.rtt_ms", "ms");
  }
  auto recordGauges = [&](std::uint64_t at) {
    if (aliveGauge != nullptr) {
      aliveGauge->record(at, static_cast<double>(leases.aliveWorkers()));
      expiredGauge->record(at,
                           static_cast<double>(leases.stats().leasesExpired));
      redispatchGauge->record(
          at, static_cast<double>(leases.stats().redispatches));
    }
  };

  auto loseWorker = [&](Connection& conn, const std::string& detail,
                        WorkerIncident::Kind kind) {
    conn.dead = true;
    const std::string name = conn.handshaken
                                 ? conn.workerId
                                 : "peer fd " + std::to_string(conn.fd);
    if (conn.handshaken) {
      const std::vector<std::uint64_t> torn =
          leases.workerLeft(conn.workerId, nowMs());
      for (std::uint64_t taskId : torn) {
        WorkerIncident incident;
        incident.kind = kind;
        incident.worker = name;
        incident.detail = detail;
        incident.taskId = taskId;
        report.incidents.push_back(std::move(incident));
      }
      if (torn.empty()) {
        report.incidents.push_back({kind, name, detail, std::nullopt});
      }
    } else {
      report.incidents.push_back({kind, name, detail, std::nullopt});
    }
  };

  auto tryAssign = [&](Connection& conn) {
    // One outstanding task per worker: the worker runs tasks serially and
    // keeping its queue empty is what makes lease re-dispatch meaningful.
    if (conn.dead || !conn.handshaken || !conn.assigned.empty()) {
      return;
    }
    const std::optional<std::uint64_t> taskId =
        leases.nextAssignment(conn.workerId, nowMs());
    if (!taskId.has_value()) {
      return;
    }
    WireMessage assign;
    assign.kind = WireMessage::Kind::kAssign;
    assign.job = jobs[*taskId];
    if (sendMessage(conn, assign)) {
      conn.assigned.push_back(*taskId);
    } else {
      loseWorker(conn, "send failed: " + std::string("assign"),
                 WorkerIncident::Kind::kWorkerLost);
    }
  };

  auto handleMessage = [&](Connection& conn, const WireMessage& message) {
    if (!conn.handshaken) {
      if (message.kind != WireMessage::Kind::kHello ||
          message.protocolVersion != kProtocolVersion ||
          message.workerId.empty()) {
        WireMessage reject;
        reject.kind = WireMessage::Kind::kReject;
        reject.reason =
            message.kind != WireMessage::Kind::kHello
                ? "expected hello"
                : (message.workerId.empty()
                       ? "empty worker id"
                       : "protocol version " +
                             std::to_string(message.protocolVersion) +
                             " != " + std::to_string(kProtocolVersion));
        sendMessage(conn, reject);
        loseWorker(conn, reject.reason, WorkerIncident::Kind::kHandshake);
        return;
      }
      // A reconnecting worker supersedes its old connection: the stale fd
      // (if any) will EOF on its own; membership is keyed by worker id.
      conn.workerId = message.workerId;
      conn.handshaken = true;
      ++report.workersSeen;
      leases.workerJoined(conn.workerId, nowMs());
      recordGauges(nowMs());
      WireMessage welcome;
      welcome.kind = WireMessage::Kind::kWelcome;
      sendMessage(conn, welcome);
      tryAssign(conn);
      return;
    }
    leases.heartbeat(conn.workerId, nowMs());
    switch (message.kind) {
      case WireMessage::Kind::kResult: {
        const std::uint64_t taskId = message.result.taskId;
        if (taskId >= jobs.size()) {
          loseWorker(conn, "result for unknown task id " +
                               std::to_string(taskId),
                     WorkerIncident::Kind::kFrameCorrupt);
          return;
        }
        conn.assigned.erase(
            std::remove(conn.assigned.begin(), conn.assigned.end(), taskId),
            conn.assigned.end());
        if (leases.completeTask(taskId, conn.workerId, nowMs())) {
          settled[taskId] = true;
          config.onResult(message.result);
        }
        tryAssign(conn);
        break;
      }
      case WireMessage::Kind::kPong: {
        const std::uint64_t sentNs = message.pingSentNs;
        const std::uint64_t now = steadyNowNs();
        if (now >= sentNs) {
          const double rtt =
              static_cast<double>(now - sentNs) / 1'000'000.0;
          report.rttMs.push_back(rtt);
          if (rttGauge != nullptr) {
            rttGauge->record(nowMs(), rtt);
          }
        }
        break;
      }
      case WireMessage::Kind::kHello:
        // A second hello on a live session is a protocol violation.
        loseWorker(conn, "unexpected hello on an established session",
                   WorkerIncident::Kind::kHandshake);
        break;
      default:
        // Coordinator-bound kinds only; anything else is noise from a
        // confused peer. Drop it, keep the session.
        break;
    }
  };

  bool anyWorkerEver = false;
  std::uint64_t lastWorkerPresenceMs = 0;
  for (;;) {
    const std::uint64_t now = nowMs();
    if (config.cancel.valid() && config.cancel.stopRequested()) {
      report.cancelled = true;
      break;
    }
    if (leases.drained()) {
      break;
    }
    if (!conns.empty()) {
      lastWorkerPresenceMs = now;
    }
    // Degrade to local execution when no worker has shown up within the
    // grace window — or when the whole fleet died and stayed gone for a
    // full window (otherwise unfinished leases would spin forever).
    if ((!anyWorkerEver && now >= config.graceWindowMs) ||
        (anyWorkerEver && conns.empty() &&
         now >= lastWorkerPresenceMs + config.graceWindowMs)) {
      report.degradedToLocal = true;
      break;
    }

    // Ticks: expiries and evictions, surfaced as worker-lost incidents.
    const LeaseTable::TickEvents events = leases.tick(now);
    for (const auto& [taskId, worker] : events.expired) {
      WorkerIncident incident;
      incident.kind = WorkerIncident::Kind::kWorkerLost;
      incident.worker = worker;
      incident.detail = "lease expired";
      incident.taskId = taskId;
      report.incidents.push_back(std::move(incident));
      // Release the task from whichever connection still holds it. A
      // worker can be live and heartbeating while the assign (or its
      // result) was lost on the wire; without this, that connection
      // stays "busy" forever, the task never re-enters assignment, and
      // the fleet wedges with pending work it will never finish. The
      // worker itself stays: if a stale result does arrive later,
      // completeTask de-duplicates it.
      for (auto& [fd, conn] : conns) {
        conn->assigned.erase(
            std::remove(conn->assigned.begin(), conn->assigned.end(),
                        taskId),
            conn->assigned.end());
      }
    }
    for (const std::string& worker : events.evictedWorkers) {
      for (auto& [fd, conn] : conns) {
        if (conn->handshaken && conn->workerId == worker) {
          conn->dead = true;
        }
      }
      report.incidents.push_back({WorkerIncident::Kind::kWorkerLost, worker,
                                  "heartbeat timeout; worker evicted",
                                  std::nullopt});
    }
    if (!events.expired.empty() || !events.evictedWorkers.empty()) {
      recordGauges(now);
    }

    // Handshake deadline: a socket that connects and then never
    // completes the hello (half-open peer, partitioned worker, port
    // scanner) is torn down instead of occupying a slot forever.
    if (config.handshakeTimeoutMs != 0) {
      for (auto& [fd, conn] : conns) {
        if (!conn->dead && !conn->handshaken &&
            now >= conn->connectedAtMs + config.handshakeTimeoutMs) {
          loseWorker(*conn, "handshake timeout",
                     WorkerIncident::Kind::kHandshake);
        }
      }
    }

    // Heartbeats and (re-)assignment for idle workers.
    for (auto& [fd, conn] : conns) {
      if (conn->dead || !conn->handshaken) {
        continue;
      }
      if (config.heartbeatIntervalMs != 0 &&
          now >= conn->lastPingSentMs + config.heartbeatIntervalMs) {
        WireMessage ping;
        ping.kind = WireMessage::Kind::kPing;
        ping.pingId = ++conn->pingId;
        ping.pingSentNs = steadyNowNs();
        if (sendMessage(*conn, ping)) {
          conn->lastPingSentMs = now;
        } else {
          loseWorker(*conn, "send failed: ping",
                     WorkerIncident::Kind::kWorkerLost);
        }
      }
      tryAssign(*conn);
    }

    // Reap connections marked dead above (the transport closes the fd).
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second->dead) {
        it = conns.erase(it);
        recordGauges(now);
      } else {
        ++it;
      }
    }

    // Poll timeout: the nearest of heartbeat cadence, backoff expiry,
    // grace window and a 50 ms liveness floor for cancellation.
    std::uint64_t timeout = 50;
    if (const auto eligible = leases.nextEligibleMs();
        eligible.has_value() && *eligible > now) {
      timeout = std::min(timeout, *eligible - now);
    }
    std::vector<struct pollfd> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back({listenFd, POLLIN, 0});
    for (auto& [fd, conn] : conns) {
      fds.push_back({fd, POLLIN, 0});
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::min<std::uint64_t>(timeout, 1'000)));
    if (rc < 0 && errno != EINTR) {
      report.error = std::string("poll: ") + std::strerror(errno);
      break;
    }
    if (rc <= 0) {
      continue;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        if (conns.size() >= config.maxConnections) {
          // Admission control under a reconnect storm: refuse at the
          // door so live sessions keep their poll budget. The peer sees
          // an orderly close and backs off through its own policy.
          ::close(fd);
          ++report.connectionsRefused;
          continue;
        }
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->transport = config.transportFactory
                              ? config.transportFactory(fd, nextConnectionId++)
                              : makeSocketTransport(fd);
        conn->connectedAtMs = nowMs();
        anyWorkerEver = true;  // someone is out there; keep waiting
        conns.emplace(fd, std::move(conn));
      }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
        continue;
      }
      auto it = conns.find(fds[i].fd);
      if (it == conns.end()) {
        continue;
      }
      Connection& conn = *it->second;
      // Drain the transport without blocking: recvFrame with a zero
      // timeout pops buffered frames, then reads until the socket would
      // block, returning kTimeout once nothing more is ready.
      for (;;) {
        std::string payload;
        const auto status = conn.transport->recvFrame(payload, 0);
        if (status == FrameTransport::RecvStatus::kTimeout) {
          break;
        }
        if (status == FrameTransport::RecvStatus::kClosed) {
          loseWorker(conn, "connection closed",
                     WorkerIncident::Kind::kWorkerLost);
          break;
        }
        if (status == FrameTransport::RecvStatus::kCorrupt) {
          loseWorker(conn, conn.transport->lastError(),
                     WorkerIncident::Kind::kFrameCorrupt);
          break;
        }
        if (status == FrameTransport::RecvStatus::kError) {
          loseWorker(conn, conn.transport->lastError(),
                     WorkerIncident::Kind::kWorkerLost);
          break;
        }
        auto decoded = decodeMessage(payload);
        if (!decoded) {
          loseWorker(conn, decoded.error().message(),
                     WorkerIncident::Kind::kFrameCorrupt);
          break;
        }
        handleMessage(conn, *decoded);
        if (conn.dead) {
          break;
        }
      }
    }
  }

  // Drain: cancellation tears leases down; completion/degradation just
  // says goodbye. Workers treat kShutdown as "disconnect now".
  if (report.cancelled) {
    leases.cancelAll(nowMs());
  }
  WireMessage shutdown;
  shutdown.kind = WireMessage::Kind::kShutdown;
  shutdown.reason = report.cancelled ? "cancelled" : "sweep complete";
  for (auto& [fd, conn] : conns) {
    if (conn->handshaken && !conn->dead) {
      sendMessage(*conn, shutdown);
    }
  }
  conns.clear();  // transports close their fds
  ::close(listenFd);

  recordGauges(nowMs());
  for (std::uint64_t id = 0; id < settled.size(); ++id) {
    if (settled[id]) {
      report.settledTasks.push_back(id);
    }
  }
  report.stats = leases.stats();
  report.spans = leases.spans();
  return report;
}

}  // namespace occm::exec::dist
