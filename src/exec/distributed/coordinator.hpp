#pragma once

// The fleet's control plane: a single-threaded poll(2) event loop that
// accepts worker connections, runs the versioned handshake, leases tasks
// out of a LeaseTable, pings for liveness, collects results, and
// re-dispatches work lost to dead, hung, or straggling workers.
//
// Generic by design (exec sits below analysis): the coordinator moves
// opaque JobSpecs and TaskResults; the analysis glue builds the jobs,
// interprets the results, and owns checkpointing through the onResult
// callback — which fires in arrival order, on the coordinator's thread,
// exactly once per task (first valid result wins; duplicates from
// speculative or expired leases are counted and dropped).
//
// Failure taxonomy: everything the *fleet* does wrong is coordinator-
// local and surfaces as a WorkerIncident (worker-lost / handshake /
// frame-corrupt) — never on the wire, never conflated with the four ways
// a run itself can fail.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "exec/distributed/lease.hpp"
#include "exec/distributed/protocol.hpp"
#include "exec/frame_transport.hpp"
#include "obs/metric_registry.hpp"

namespace occm::exec::dist {

/// Coordinator-local failure evidence (the kinds analysis maps onto
/// RunFailureKind::kWorkerLost / kHandshake / kFrameCorrupt).
struct WorkerIncident {
  enum class Kind : std::uint8_t {
    kWorkerLost,    ///< connection died / lease expired / worker evicted
    kHandshake,     ///< version mismatch or malformed hello
    kFrameCorrupt,  ///< stream failed frame validation mid-session
  };
  Kind kind = Kind::kWorkerLost;
  std::string worker;  ///< worker id, or "peer fd N" pre-handshake
  std::string detail;
  /// Task whose lease was lost, when the incident names one.
  std::optional<std::uint64_t> taskId;
};

struct CoordinatorConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port goes to onListening
  /// How long to wait for the *first* worker before giving up and letting
  /// the caller degrade to local execution. 0 = don't wait (local only
  /// unless a worker races the window).
  std::uint64_t graceWindowMs = 5'000;
  LeaseConfig lease;
  /// Ping cadence per worker; pongs feed RTT gauges and liveness.
  std::uint64_t heartbeatIntervalMs = 1'000;
  /// A connection that has not completed the hello within this window is
  /// dropped (handshake incident). Guards against half-open sockets piling
  /// up under partitions and reconnect storms. 0 = no deadline.
  std::uint64_t handshakeTimeoutMs = 10'000;
  /// Admission cap: accepts beyond this many live connections are closed
  /// immediately and counted in CoordinatorReport::connectionsRefused —
  /// a reconnect storm degrades the storm, not the fleet.
  std::size_t maxConnections = 256;
  /// Builds each accepted connection's framed transport (chaos injection
  /// point). Null = plain socket transport.
  TransportFactory transportFactory;
  /// Graceful stop: leases are torn down, every worker gets kShutdown,
  /// and run() returns with cancelled = true. The caller's checkpoint is
  /// already current (onResult committed each arrival).
  CancellationToken cancel;
  /// Fired once the listen socket is bound (test hook for ephemeral
  /// ports and for scripts that need the port before workers launch).
  std::function<void(int boundPort)> onListening;
  /// Result sink; see class comment for ordering guarantees. Required.
  std::function<void(const TaskResult&)> onResult;
  /// Optional dist.* gauges (dist.workers.alive, dist.leases.expired,
  /// dist.redispatches, dist.heartbeat.rtt_ms), recorded against
  /// milliseconds-since-start as the registry's time axis. Not owned.
  obs::MetricRegistry* metrics = nullptr;
};

struct CoordinatorReport {
  /// Task ids that settled through the fleet (results already delivered
  /// through onResult). Unsettled ids are the caller's to run locally.
  std::vector<std::uint64_t> settledTasks;
  LeaseStats stats;
  std::vector<LeaseSpan> spans;
  std::vector<WorkerIncident> incidents;
  /// Distinct workers that completed the handshake over the run.
  std::size_t workersSeen = 0;
  /// Accepts closed at the admission cap (see maxConnections).
  std::uint64_t connectionsRefused = 0;
  /// Heartbeat round-trip samples, arrival order (host-time, not
  /// deterministic; diagnostics only).
  std::vector<double> rttMs;
  bool cancelled = false;
  /// No worker arrived within the grace window; nothing was dispatched.
  bool degradedToLocal = false;
  /// Listen/bind failure (report.error non-empty); nothing ran.
  std::string error;
};

/// Runs the fleet over `jobs` until every task settles, is abandoned, or
/// the token fires. Blocking; single-threaded; never throws on network
/// misbehavior (incidents are data).
[[nodiscard]] CoordinatorReport runCoordinator(
    const CoordinatorConfig& config, const std::vector<JobSpec>& jobs);

}  // namespace occm::exec::dist
