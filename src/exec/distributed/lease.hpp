#pragma once

// The coordinator's work queue as *leases*: each task is handed to a
// worker with a deadline, heartbeats keep the worker alive, and an
// expired lease (deadline passed, worker evicted, connection lost) puts
// the task back in the queue behind a capped-exponential backoff with
// deterministic jitter (common/backoff). Tail stragglers are
// speculatively re-dispatched; the first valid result wins and
// duplicates are discarded by task id.
//
// Deliberately a pure state machine over an injected clock (milliseconds
// since an arbitrary epoch): every transition takes `nowMs`, so the
// tier-1 tests drive expiry, eviction, speculation and convergence with
// a fake clock and zero real sleeps. The coordinator's poll loop is the
// only caller that feeds it real time.
//
// Determinism note: which worker runs which task (and how often) is
// timing-dependent and NOT deterministic — what is deterministic is the
// merged output, because every task is self-contained, results are keyed
// by task id, and the first valid result settles a task permanently.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.hpp"

namespace occm::exec::dist {

struct LeaseConfig {
  /// A lease older than this is expired and its task re-queued. 0 = never
  /// expire (results or worker death are then the only recovery paths).
  std::uint64_t leaseTimeoutMs = 60'000;
  /// A worker silent longer than this (no result, pong, or any frame) is
  /// evicted and its leases expire immediately. 0 = never evict.
  std::uint64_t heartbeatTimeoutMs = 15'000;
  /// Delay schedule for re-queued tasks: expiry k waits
  /// redispatchBackoff.delay(k) ms before the task is assignable again.
  BackoffPolicy redispatchBackoff{.base = 100, .cap = 5'000,
                                  .jitterPct256 = 64, .seed = 0x0ccd15717ULL};
  /// Give up on a task after this many lease expiries (it reports as
  /// worker-lost). 0 = retry forever.
  std::uint32_t maxExpiries = 16;
  /// Tail-straggler speculation: when no task is pending and a lease has
  /// been running at least this long, an idle worker gets a duplicate of
  /// the oldest such lease. 0 disables speculation.
  std::uint64_t speculativeAfterMs = 10'000;
};

/// One dispatch interval, for the Chrome-trace lifecycle export.
struct LeaseSpan {
  std::uint64_t taskId = 0;
  std::string worker;
  std::uint64_t startMs = 0;
  std::uint64_t endMs = 0;
  /// "won" (its result settled the task), "duplicate" (a sibling won),
  /// "expired", "evicted", "disconnected", "abandoned", "cancelled".
  std::string outcome;
};

/// Counters surfaced as dist.* gauges and SweepResult diagnostics.
struct LeaseStats {
  std::uint64_t leasesGranted = 0;
  std::uint64_t leasesExpired = 0;
  std::uint64_t redispatches = 0;       ///< re-queues after expiry
  std::uint64_t speculativeLeases = 0;  ///< duplicates granted to idle workers
  std::uint64_t duplicatesDiscarded = 0;
  std::uint64_t workersEvicted = 0;
  std::uint64_t tasksAbandoned = 0;
};

class LeaseTable {
 public:
  LeaseTable(LeaseConfig config, std::size_t taskCount);

  // -- worker membership ---------------------------------------------------

  void workerJoined(const std::string& worker, std::uint64_t nowMs);
  /// Graceful or detected disconnect: all of the worker's leases expire
  /// immediately (tasks re-queue with backoff) and it stops receiving
  /// assignments. Returns the task ids whose leases were torn down.
  std::vector<std::uint64_t> workerLeft(const std::string& worker,
                                        std::uint64_t nowMs);
  /// Any frame from the worker counts as a heartbeat.
  void heartbeat(const std::string& worker, std::uint64_t nowMs);
  [[nodiscard]] std::size_t aliveWorkers() const noexcept {
    return workers_.size();
  }

  // -- assignment ----------------------------------------------------------

  /// Next task for an idle `worker`: the lowest-id pending task whose
  /// backoff has elapsed, else (when nothing is pending) a speculative
  /// duplicate of the oldest old-enough in-flight lease the worker does
  /// not already hold. nullopt = nothing to hand out right now.
  [[nodiscard]] std::optional<std::uint64_t> nextAssignment(
      const std::string& worker, std::uint64_t nowMs);

  /// Earliest nowMs at which nextAssignment could return a task that is
  /// currently pending but backed off; nullopt when no task is waiting on
  /// backoff. Lets the poll loop size its timeout instead of spinning.
  [[nodiscard]] std::optional<std::uint64_t> nextEligibleMs() const;

  // -- results -------------------------------------------------------------

  /// A result for `taskId` arrived from `worker`. Returns true when this
  /// result settles the task (first valid result wins); false when the
  /// task is already settled — the duplicate is counted and discarded.
  bool completeTask(std::uint64_t taskId, const std::string& worker,
                    std::uint64_t nowMs);

  /// Marks a task settled outside the fleet (restored from a checkpoint
  /// before dispatch, or finished by the local fallback).
  void settleLocal(std::uint64_t taskId, std::uint64_t nowMs);

  // -- clock ---------------------------------------------------------------

  struct TickEvents {
    /// (taskId, worker) pairs whose leases expired this tick.
    std::vector<std::pair<std::uint64_t, std::string>> expired;
    std::vector<std::string> evictedWorkers;
    /// Tasks that exhausted maxExpiries this tick and will never be
    /// re-dispatched (the coordinator records them as worker-lost).
    std::vector<std::uint64_t> abandoned;
  };

  /// Advances time: expires overdue leases, evicts silent workers.
  TickEvents tick(std::uint64_t nowMs);

  /// Cancellation: tears down every outstanding lease (outcome
  /// "cancelled") without re-queueing.
  void cancelAll(std::uint64_t nowMs);

  // -- introspection -------------------------------------------------------

  [[nodiscard]] bool taskSettled(std::uint64_t taskId) const;
  [[nodiscard]] bool allSettled() const noexcept {
    return settled_ == tasks_.size();
  }
  /// Settled + abandoned: nothing left for the fleet to do.
  [[nodiscard]] bool drained() const noexcept {
    return settled_ + abandonedCount_ == tasks_.size();
  }
  [[nodiscard]] const LeaseStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<LeaseSpan>& spans() const noexcept {
    return spans_;
  }

 private:
  enum class TaskState : std::uint8_t {
    kPending,   ///< waiting for a worker (possibly backed off)
    kLeased,    ///< at least one live lease
    kSettled,   ///< a valid result (or local settle) landed
    kAbandoned  ///< exhausted maxExpiries; reported as worker-lost
  };

  struct Lease {
    std::string worker;
    std::uint64_t startMs = 0;
    std::uint64_t deadlineMs = 0;  ///< 0 = no deadline
    bool speculative = false;
  };

  struct Task {
    TaskState state = TaskState::kPending;
    std::uint64_t notBeforeMs = 0;  ///< backoff gate while pending
    std::uint32_t expiries = 0;     ///< feeds the backoff attempt index
    std::vector<Lease> leases;      ///< >1 only under speculation
  };

  struct WorkerInfo {
    std::uint64_t lastSeenMs = 0;
  };

  void grantLease(Task& task, std::uint64_t taskId, const std::string& worker,
                  std::uint64_t nowMs, bool speculative);
  /// Ends one lease with `outcome`, recording its span. Does not touch
  /// task state.
  void closeLease(std::uint64_t taskId, Task& task, std::size_t index,
                  std::uint64_t nowMs, const std::string& outcome);
  /// Re-queues a task after a lease loss (or abandons it past the cap).
  void requeue(std::uint64_t taskId, Task& task, std::uint64_t nowMs);

  LeaseConfig config_;
  std::vector<Task> tasks_;
  std::map<std::string, WorkerInfo> workers_;
  std::size_t settled_ = 0;
  std::size_t abandonedCount_ = 0;
  LeaseStats stats_;
  std::vector<LeaseSpan> spans_;
};

}  // namespace occm::exec::dist
