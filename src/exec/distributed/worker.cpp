#include "exec/distributed/worker.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/error.hpp"
#include "exec/frame_transport.hpp"

namespace occm::exec::dist {

namespace {

/// Runs jobs on a dedicated thread so the socket loop keeps answering
/// pings while a simulation is in flight. One job at a time (the
/// coordinator assigns at most one task per worker).
class TaskThread {
 public:
  explicit TaskThread(const TaskRunner& runTask) : runTask_(runTask) {
    thread_ = std::thread([this] { loop(); });
  }

  ~TaskThread() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  TaskThread(const TaskThread&) = delete;
  TaskThread& operator=(const TaskThread&) = delete;

  void submit(JobSpec job) {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(job));
    cv_.notify_all();
  }

  [[nodiscard]] std::optional<TaskResult> takeFinished() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (finished_.empty()) {
      return std::nullopt;
    }
    TaskResult result = std::move(finished_.front());
    finished_.pop_front();
    return result;
  }

  [[nodiscard]] bool idle() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pending_.empty() && !running_ && finished_.empty();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) {
        return;
      }
      JobSpec job = std::move(pending_.front());
      pending_.pop_front();
      running_ = true;
      lock.unlock();
      TaskResult result;
      try {
        result = runTask_(job);
      } catch (const std::exception& e) {
        // The runner promised not to throw; keep the contract for it.
        result.taskId = job.taskId;
        result.hasFailure = true;
        result.failure.kind = WireFailureKind::kException;
        result.failure.attempts = 1;
        result.failure.error = e.what();
      }
      result.taskId = job.taskId;
      lock.lock();
      running_ = false;
      finished_.push_back(std::move(result));
    }
  }

  const TaskRunner& runTask_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<JobSpec> pending_;
  std::deque<TaskResult> finished_;
  bool running_ = false;
  bool stop_ = false;
  std::thread thread_;
};

/// Cancellable sleep in small chunks (the straggle test hook).
void sleepMs(std::uint64_t ms, const CancellationToken& cancel) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    if (cancel.valid() && cancel.stopRequested()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Connects and handshakes; returns the transport or an error string.
/// `sessionIndex` becomes the transport factory's connection id, so a
/// seeded chaos schedule varies across reconnects but replays per run.
Expected<std::unique_ptr<FrameTransport>, std::string> connectAndHello(
    const WorkerOptions& options, std::uint64_t sessionIndex,
    std::string* rejectReason) {
  auto fd = connectTcp(options.host, options.port, options.connectTimeoutMs);
  if (!fd) {
    return makeUnexpected(fd.error());
  }
  std::unique_ptr<FrameTransport> transport =
      options.transportFactory ? options.transportFactory(*fd, sessionIndex)
                               : makeSocketTransport(*fd);
  WireMessage hello;
  hello.kind = WireMessage::Kind::kHello;
  hello.protocolVersion = kProtocolVersion;
  hello.workerId = options.workerId;
  if (!transport->sendFrame(encodeMessage(hello))) {
    return makeUnexpected("hello send failed: " + transport->lastError());
  }
  std::string payload;
  const FrameTransport::RecvStatus status =
      transport->recvFrame(payload, options.connectTimeoutMs);
  if (status != FrameTransport::RecvStatus::kFrame) {
    return makeUnexpected("no handshake reply (" + transport->lastError() +
                          ")");
  }
  auto reply = decodeMessage(payload);
  if (!reply) {
    return makeUnexpected("corrupt handshake reply: " +
                          reply.error().message());
  }
  if (reply->kind == WireMessage::Kind::kReject) {
    *rejectReason = reply->reason;
    return makeUnexpected("rejected: " + reply->reason);
  }
  if (reply->kind != WireMessage::Kind::kWelcome) {
    return makeUnexpected(std::string("unexpected handshake reply kind"));
  }
  return transport;
}

}  // namespace

WorkerReport runWorker(const WorkerOptions& options,
                       const TaskRunner& runTask) {
  OCCM_REQUIRE_MSG(static_cast<bool>(runTask), "worker needs a task runner");
  WorkerReport report;
  // Decorrelate fleet-wide reconnect storms: each worker jitters its own
  // stream, deterministically derived from its id.
  BackoffPolicy reconnect = options.reconnectBackoff;
  for (char c : options.workerId) {
    reconnect.seed = reconnect.seed * 131 + static_cast<unsigned char>(c);
  }

  TaskThread tasks(runTask);
  std::unique_ptr<FrameTransport> transport;
  std::uint32_t connectFailures = 0;
  bool everConnected = false;
  std::uint64_t sessionIndex = 0;
  auto lastFrameAt = std::chrono::steady_clock::now();

  for (;;) {
    if (options.cancel.valid() && options.cancel.stopRequested()) {
      report.stopReason = "cancelled";
      report.ok = true;
      return report;
    }
    if (transport == nullptr) {
      std::string rejectReason;
      auto connected = connectAndHello(options, sessionIndex, &rejectReason);
      if (!connected) {
        if (!rejectReason.empty()) {
          // A version reject is permanent: retrying cannot fix it.
          report.stopReason = "rejected: " + rejectReason;
          return report;
        }
        if (++connectFailures >= options.maxConnectAttempts) {
          report.stopReason = "connect failed: " + connected.error();
          return report;
        }
        sleepMs(reconnect.delay(connectFailures - 1), options.cancel);
        continue;
      }
      transport = std::move(*connected);
      connectFailures = 0;
      ++sessionIndex;
      lastFrameAt = std::chrono::steady_clock::now();
      if (everConnected) {
        ++report.reconnects;
      }
      everConnected = true;
    }

    // Ship any finished result (with the optional straggle delay).
    while (auto finished = tasks.takeFinished()) {
      if (options.straggleMs != 0) {
        sleepMs(options.straggleMs, options.cancel);
      }
      WireMessage result;
      result.kind = WireMessage::Kind::kResult;
      result.result = std::move(*finished);
      if (!transport->sendFrame(encodeMessage(result))) {
        transport.reset();  // reconnect; the result is lost with the
        break;              // session — the coordinator re-dispatches
      }
      ++report.tasksCompleted;
      if (options.maxTasks != 0 && report.tasksCompleted >= options.maxTasks) {
        report.stopReason = "done";
        report.ok = true;
        return report;  // abrupt exit by design (worker-death test hook)
      }
    }
    if (transport == nullptr) {
      continue;
    }

    std::string payload;
    const FrameTransport::RecvStatus status =
        transport->recvFrame(payload, 50);
    switch (status) {
      case FrameTransport::RecvStatus::kTimeout: {
        // Idle guard: the coordinator pings every heartbeat interval, so
        // a session with *nothing* inbound for the whole idle window is
        // an asymmetric partition (our reads blocked, its view of us
        // long evicted). Tear it down and reconnect instead of idling
        // forever on a connection only we believe in.
        if (options.idleTimeoutMs != 0 &&
            std::chrono::steady_clock::now() - lastFrameAt >=
                std::chrono::milliseconds(options.idleTimeoutMs)) {
          transport.reset();
          if (++connectFailures >= options.maxConnectAttempts) {
            report.stopReason = "connection lost: idle timeout";
            return report;
          }
          sleepMs(reconnect.delay(connectFailures - 1), options.cancel);
        }
        continue;  // poll cancellation / finished results again
      }
      case FrameTransport::RecvStatus::kClosed:
      case FrameTransport::RecvStatus::kCorrupt:
      case FrameTransport::RecvStatus::kError: {
        const std::string why = transport->lastError();
        transport.reset();
        if (++connectFailures >= options.maxConnectAttempts) {
          report.stopReason =
              "connection lost" + (why.empty() ? "" : ": " + why);
          return report;
        }
        sleepMs(reconnect.delay(connectFailures - 1), options.cancel);
        continue;
      }
      case FrameTransport::RecvStatus::kFrame:
        lastFrameAt = std::chrono::steady_clock::now();
        break;
    }

    auto message = decodeMessage(payload);
    if (!message) {
      // A coordinator speaking garbage is as gone as a dead one.
      transport.reset();
      continue;
    }
    switch (message->kind) {
      case WireMessage::Kind::kAssign:
        tasks.submit(std::move(message->job));
        break;
      case WireMessage::Kind::kPing: {
        WireMessage pong;
        pong.kind = WireMessage::Kind::kPong;
        pong.pingId = message->pingId;
        pong.pingSentNs = message->pingSentNs;
        if (!transport->sendFrame(encodeMessage(pong))) {
          transport.reset();
        }
        break;
      }
      case WireMessage::Kind::kShutdown:
        report.stopReason = "shutdown";
        report.ok = true;
        return report;
      default:
        break;  // worker-bound kinds only; ignore the rest
    }
  }
}

}  // namespace occm::exec::dist
