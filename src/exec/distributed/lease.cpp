#include "exec/distributed/lease.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace occm::exec::dist {

LeaseTable::LeaseTable(LeaseConfig config, std::size_t taskCount)
    : config_(config), tasks_(taskCount) {}

void LeaseTable::workerJoined(const std::string& worker, std::uint64_t nowMs) {
  workers_[worker].lastSeenMs = nowMs;
}

std::vector<std::uint64_t> LeaseTable::workerLeft(const std::string& worker,
                                                  std::uint64_t nowMs) {
  std::vector<std::uint64_t> torn;
  workers_.erase(worker);
  for (std::uint64_t id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    if (task.state != TaskState::kLeased) {
      continue;
    }
    for (std::size_t i = task.leases.size(); i-- > 0;) {
      if (task.leases[i].worker == worker) {
        closeLease(id, task, i, nowMs, "disconnected");
        torn.push_back(id);
      }
    }
    if (task.leases.empty()) {
      requeue(id, task, nowMs);
    }
  }
  return torn;
}

void LeaseTable::heartbeat(const std::string& worker, std::uint64_t nowMs) {
  auto it = workers_.find(worker);
  if (it != workers_.end()) {
    it->second.lastSeenMs = nowMs;
  }
}

void LeaseTable::grantLease(Task& task, std::uint64_t taskId,
                            const std::string& worker, std::uint64_t nowMs,
                            bool speculative) {
  Lease lease;
  lease.worker = worker;
  lease.startMs = nowMs;
  lease.deadlineMs =
      config_.leaseTimeoutMs == 0 ? 0 : nowMs + config_.leaseTimeoutMs;
  lease.speculative = speculative;
  task.leases.push_back(std::move(lease));
  task.state = TaskState::kLeased;
  ++stats_.leasesGranted;
  if (speculative) {
    ++stats_.speculativeLeases;
  }
  (void)taskId;
}

std::optional<std::uint64_t> LeaseTable::nextAssignment(
    const std::string& worker, std::uint64_t nowMs) {
  if (workers_.find(worker) == workers_.end()) {
    return std::nullopt;  // not (or no longer) a member
  }
  // Lowest task id first: matches request order, so under a single worker
  // the dispatch order equals the serial execution order.
  for (std::uint64_t id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    if (task.state == TaskState::kPending && nowMs >= task.notBeforeMs) {
      grantLease(task, id, worker, nowMs, /*speculative=*/false);
      return id;
    }
  }
  if (config_.speculativeAfterMs == 0) {
    return std::nullopt;
  }
  // Nothing pending: speculate on the oldest straggling lease this worker
  // does not already hold.
  std::optional<std::uint64_t> best;
  std::uint64_t bestStart = 0;
  for (std::uint64_t id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    if (task.state != TaskState::kLeased) {
      continue;
    }
    bool heldByWorker = false;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (const Lease& lease : task.leases) {
      heldByWorker = heldByWorker || lease.worker == worker;
      oldest = std::min(oldest, lease.startMs);
    }
    if (heldByWorker || nowMs < oldest + config_.speculativeAfterMs) {
      continue;
    }
    if (!best.has_value() || oldest < bestStart) {
      best = id;
      bestStart = oldest;
    }
  }
  if (best.has_value()) {
    grantLease(tasks_[*best], *best, worker, nowMs, /*speculative=*/true);
  }
  return best;
}

std::optional<std::uint64_t> LeaseTable::nextEligibleMs() const {
  std::optional<std::uint64_t> earliest;
  for (const Task& task : tasks_) {
    if (task.state != TaskState::kPending) {
      continue;
    }
    if (!earliest.has_value() || task.notBeforeMs < *earliest) {
      earliest = task.notBeforeMs;
    }
  }
  return earliest;
}

bool LeaseTable::completeTask(std::uint64_t taskId, const std::string& worker,
                              std::uint64_t nowMs) {
  OCCM_REQUIRE_MSG(taskId < tasks_.size(), "result for unknown task id");
  Task& task = tasks_[taskId];
  if (task.state == TaskState::kSettled) {
    ++stats_.duplicatesDiscarded;
    return false;
  }
  // A result from a worker whose lease already expired (it was slow, not
  // dead) still wins if the task is unsettled — the work is valid and
  // deterministic regardless of who finished it.
  for (std::size_t i = task.leases.size(); i-- > 0;) {
    const bool winner = task.leases[i].worker == worker;
    closeLease(taskId, task, i, nowMs, winner ? "won" : "duplicate");
  }
  if (task.state == TaskState::kAbandoned) {
    // A straggler outlived the expiry cap: accept the work after all.
    --abandonedCount_;
    --stats_.tasksAbandoned;
  }
  task.state = TaskState::kSettled;
  ++settled_;
  return true;
}

void LeaseTable::settleLocal(std::uint64_t taskId, std::uint64_t nowMs) {
  OCCM_REQUIRE_MSG(taskId < tasks_.size(), "settle for unknown task id");
  Task& task = tasks_[taskId];
  if (task.state == TaskState::kSettled) {
    return;
  }
  for (std::size_t i = task.leases.size(); i-- > 0;) {
    closeLease(taskId, task, i, nowMs, "duplicate");
  }
  if (task.state == TaskState::kAbandoned) {
    --abandonedCount_;
    --stats_.tasksAbandoned;
  }
  task.state = TaskState::kSettled;
  ++settled_;
}

LeaseTable::TickEvents LeaseTable::tick(std::uint64_t nowMs) {
  TickEvents events;
  // Evictions first, so a dead worker's leases expire this same tick.
  if (config_.heartbeatTimeoutMs != 0) {
    for (auto it = workers_.begin(); it != workers_.end();) {
      if (nowMs >= it->second.lastSeenMs + config_.heartbeatTimeoutMs) {
        events.evictedWorkers.push_back(it->first);
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
    for (const std::string& worker : events.evictedWorkers) {
      ++stats_.workersEvicted;
      for (std::uint64_t id = 0; id < tasks_.size(); ++id) {
        Task& task = tasks_[id];
        if (task.state != TaskState::kLeased) {
          continue;
        }
        for (std::size_t i = task.leases.size(); i-- > 0;) {
          if (task.leases[i].worker == worker) {
            closeLease(id, task, i, nowMs, "evicted");
            events.expired.emplace_back(id, worker);
          }
        }
        if (task.leases.empty()) {
          requeue(id, task, nowMs);
          if (task.state == TaskState::kAbandoned) {
            events.abandoned.push_back(id);
          }
        }
      }
    }
  }
  if (config_.leaseTimeoutMs != 0) {
    for (std::uint64_t id = 0; id < tasks_.size(); ++id) {
      Task& task = tasks_[id];
      if (task.state != TaskState::kLeased) {
        continue;
      }
      for (std::size_t i = task.leases.size(); i-- > 0;) {
        if (task.leases[i].deadlineMs != 0 &&
            nowMs >= task.leases[i].deadlineMs) {
          events.expired.emplace_back(id, task.leases[i].worker);
          closeLease(id, task, i, nowMs, "expired");
          ++stats_.leasesExpired;
        }
      }
      if (task.leases.empty()) {
        requeue(id, task, nowMs);
        if (task.state == TaskState::kAbandoned) {
          events.abandoned.push_back(id);
        }
      }
    }
  }
  return events;
}

void LeaseTable::cancelAll(std::uint64_t nowMs) {
  for (std::uint64_t id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    for (std::size_t i = task.leases.size(); i-- > 0;) {
      closeLease(id, task, i, nowMs, "cancelled");
    }
    if (task.state == TaskState::kLeased) {
      task.state = TaskState::kPending;  // pending again; a resume retries
    }
  }
}

bool LeaseTable::taskSettled(std::uint64_t taskId) const {
  OCCM_REQUIRE_MSG(taskId < tasks_.size(), "query for unknown task id");
  return tasks_[taskId].state == TaskState::kSettled;
}

void LeaseTable::closeLease(std::uint64_t taskId, Task& task,
                            std::size_t index, std::uint64_t nowMs,
                            const std::string& outcome) {
  LeaseSpan span;
  span.taskId = taskId;
  span.worker = task.leases[index].worker;
  span.startMs = task.leases[index].startMs;
  span.endMs = nowMs;
  span.outcome = outcome;
  spans_.push_back(std::move(span));
  task.leases.erase(task.leases.begin() +
                    static_cast<std::ptrdiff_t>(index));
}

void LeaseTable::requeue(std::uint64_t taskId, Task& task,
                         std::uint64_t nowMs) {
  ++task.expiries;
  if (config_.maxExpiries != 0 && task.expiries >= config_.maxExpiries) {
    task.state = TaskState::kAbandoned;
    ++abandonedCount_;
    ++stats_.tasksAbandoned;
    return;
  }
  // Deterministic per-task jitter: decorrelate re-dispatch storms across
  // tasks while keeping each task's schedule replayable.
  BackoffPolicy policy = config_.redispatchBackoff;
  policy.seed ^= taskId;
  task.state = TaskState::kPending;
  task.notBeforeMs = nowMs + policy.delay(task.expiries - 1);
  ++stats_.redispatches;
}

}  // namespace occm::exec::dist
