#pragma once

// The fleet's data plane: one worker process connects to the
// coordinator, handshakes, and loops — receive a JobSpec, run it through
// the injected task runner on a dedicated thread (so pings are answered
// while a long simulation is in flight), ship the TaskResult back.
//
// Robust to the coordinator being the flaky side too: a lost connection
// is retried with capped-exponential backoff (common/backoff, seeded by
// the worker id so a fleet's reconnect storms decorrelate), the in-flight
// task keeps running across the gap, and its result is delivered on the
// next session — the coordinator discards it if a re-dispatched copy
// already won.
//
// Test hooks (used by tests/analysis/test_distributed_sweep and
// scripts/distributed_smoke.sh): straggleMs delays each result to
// manufacture a tail straggler; maxTasks exits the process mid-fleet to
// manufacture a worker death.

#include <cstdint>
#include <functional>
#include <string>

#include "common/backoff.hpp"
#include "common/cancellation.hpp"
#include "exec/distributed/protocol.hpp"
#include "exec/frame_transport.hpp"

namespace occm::exec::dist {

/// Runs one JobSpec to completion. Must not throw (run failures are data
/// in the TaskResult); called on the worker's task thread.
using TaskRunner = std::function<TaskResult(const JobSpec&)>;

struct WorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Fleet-unique name; the coordinator keys leases and eviction by it.
  std::string workerId = "worker";
  /// Reconnect schedule after a lost connection (delays in ms). The
  /// worker gives up after maxConnectAttempts consecutive failures.
  BackoffPolicy reconnectBackoff{.base = 200, .cap = 5'000,
                                 .jitterPct256 = 64, .seed = 0};
  std::uint32_t maxConnectAttempts = 10;
  int connectTimeoutMs = 5'000;
  /// Cooperative stop: finish nothing new, disconnect, return.
  CancellationToken cancel;
  /// An established session that stays completely silent (no frames, not
  /// even heartbeat pings) for this long is treated as lost and
  /// reconnected — the asymmetric-partition guard: without it a worker
  /// whose inbound direction is blocked idles forever while the
  /// coordinator has long evicted it. 0 = off.
  std::uint64_t idleTimeoutMs = 0;
  /// Builds the framed transport over each connected socket (chaos
  /// injection point; the connection id is the session ordinal). Null =
  /// plain socket transport.
  TransportFactory transportFactory;
  /// Test hook: sleep this long before sending each result (a straggler).
  std::uint64_t straggleMs = 0;
  /// Test hook: exit after this many results (0 = unlimited); simulates a
  /// worker leaving mid-sweep without the courtesy of a FIN.
  std::uint64_t maxTasks = 0;
};

struct WorkerReport {
  std::uint64_t tasksCompleted = 0;
  std::uint64_t reconnects = 0;
  /// Why the worker stopped: "shutdown" (coordinator said so), "done"
  /// (maxTasks reached), "cancelled", "rejected: ...", or a transport
  /// error after the reconnect budget ran out.
  std::string stopReason;
  /// True for orderly stops (shutdown / done / cancelled).
  bool ok = false;
};

/// Blocking worker loop; returns when the coordinator shuts it down, the
/// token fires, the reconnect budget is exhausted, or maxTasks is hit.
[[nodiscard]] WorkerReport runWorker(const WorkerOptions& options,
                                     const TaskRunner& runTask);

}  // namespace occm::exec::dist
