#pragma once

// Wire protocol of the distributed sweep fleet: the typed messages a
// coordinator and its workers exchange over framed TCP (the same
// length-prefixed CRC-32 frames as the isolation pipe, reassembled from
// the stream by exec/frame_transport).
//
// Layering: exec sits below analysis, so the protocol knows nothing about
// SweepConfig. A JobSpec carries everything a worker needs to rebuild one
// (core count) run bit-identically — the full MachineSpec (not a preset
// name: the coordinator's spec is authoritative even when hand-tuned),
// the workload identity as strings, the sim scalars, and the fault plan
// as its canonical JSON. The analysis glue (analysis/distributed_sweep)
// maps JobSpec <-> SweepConfig and injects the task runner.
//
// The wire failure enum has exactly the four kinds a *run* can produce
// (exception / timeout / cancelled / crash). Coordinator-local outcomes —
// a worker that died mid-lease, a handshake that failed, a corrupt frame
// — are never on the wire; the coordinator synthesizes them itself.
//
// Versioned handshake: a worker opens with kHello carrying
// kProtocolVersion; the coordinator answers kWelcome (same version) or
// kReject with a reason and drops the connection. Every decode is
// bounds-checked through exec::wire::Reader — arbitrary bytes produce a
// typed IpcError, never a throw (fuzz/fuzz_wire_message.cpp).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "exec/ipc.hpp"
#include "perf/run_profile.hpp"
#include "topology/machine_spec.hpp"

namespace occm::exec::dist {

/// Bumped on any incompatible message/codec change; a mismatched hello is
/// rejected before any job bytes flow.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// One (core count) unit of work, self-contained: a worker rebuilds the
/// workload and simulator from these fields alone, so its profile is
/// bit-identical to the same task run in-process by the coordinator.
struct JobSpec {
  std::uint64_t taskId = 0;  ///< request-order index; result routing key
  int cores = 0;
  int maxAttempts = 1;

  // Workload identity (parsed back by the analysis layer).
  std::string program;       ///< "CG", "x264", ...
  std::string problemClass;  ///< "C", "native", ...
  int threads = 0;
  std::uint64_t workloadSeed = 0;

  topology::MachineSpec machine;

  // sim::SimConfig scalars (observability and cancellation stay local).
  Cycles schedQuantum = 0;
  Cycles schedSwitchCost = 0;
  std::uint8_t memPlacement = 0;  ///< mem::PlacementPolicy numeric value
  std::uint8_t memService = 0;    ///< mem::ServiceDiscipline numeric value
  std::uint64_t memSeed = 0;
  bool enableSampler = false;
  double samplerWindowNs = 5000.0;
  Cycles syncHorizon = 0;
  Cycles cycleBudget = 0;
  std::uint64_t simSeed = 0;
  /// fault::toJson of the sweep's fault plan; empty = no plan. JSON (not
  /// a binary codec) because fault/fault_plan_io already round-trips the
  /// plan exactly and is fuzz-hardened.
  std::string faultPlanJson;
};

/// The four ways a run itself can fail (mirrors the retained subset of
/// analysis::RunFailureKind; coordinator-local kinds never appear here).
enum class WireFailureKind : std::uint8_t {
  kException = 0,
  kTimeout = 1,
  kCancelled = 2,
  kCrash = 3,
};

struct TaskFailure {
  WireFailureKind kind = WireFailureKind::kException;
  int attempts = 0;
  bool recovered = false;
  std::string error;
  int signal = 0;       ///< kCrash only
  std::string rlimit;   ///< kCrash only
  std::string stderrTail;  ///< kCrash only
};

/// What a worker reports for one finished task: a profile, a failure
/// record, or both (a recovered retry has a failure *and* a profile).
struct TaskResult {
  std::uint64_t taskId = 0;
  bool hasProfile = false;
  perf::RunProfile profile;
  bool hasFailure = false;
  TaskFailure failure;
};

/// One frame payload in either direction. A tagged union kept flat (the
/// unused members of a kind stay default-constructed) so the codec is a
/// single switch in each direction.
struct WireMessage {
  enum class Kind : std::uint8_t {
    kHello = 1,     ///< worker -> coord: version + worker id
    kWelcome = 2,   ///< coord -> worker: handshake accepted
    kReject = 3,    ///< coord -> worker: handshake refused (reason)
    kAssign = 4,    ///< coord -> worker: run this job
    kResult = 5,    ///< worker -> coord: finished job outcome
    kPing = 6,      ///< coord -> worker: liveness probe
    kPong = 7,      ///< worker -> coord: probe echo
    kShutdown = 8,  ///< coord -> worker: drain and disconnect (reason)
  };

  Kind kind = Kind::kHello;
  std::uint32_t protocolVersion = kProtocolVersion;  ///< kHello / kWelcome
  std::string workerId;                              ///< kHello
  std::string reason;                                ///< kReject / kShutdown
  JobSpec job;                                       ///< kAssign
  TaskResult result;                                 ///< kResult
  std::uint64_t pingId = 0;         ///< kPing / kPong (echoed)
  std::uint64_t pingSentNs = 0;     ///< kPing / kPong (echoed, RTT anchor)
};

/// Serializes one message (frame payload only; the transport frames it).
[[nodiscard]] std::string encodeMessage(const WireMessage& message);

/// Decodes what encodeMessage produced. Every field is bounds-checked and
/// every enum range-validated; arbitrary bytes yield a typed IpcError.
[[nodiscard]] Expected<WireMessage, IpcError> decodeMessage(
    std::string_view payload);

}  // namespace occm::exec::dist
