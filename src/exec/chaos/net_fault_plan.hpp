#pragma once

// Deterministic network-fault scenarios scripted against frame indices —
// fault/FaultPlan's declarative-windows idea applied to the framed
// transports instead of the simulated machine.
//
// A NetFaultPlan is a list of fault events, each scoped to a direction
// (send/recv), a window of frame indices [first, last], and a per-frame
// firing probability in 1/256ths. The plan is pure data;
// chaos::ChaosFrameTransport turns it into dropped, duplicated,
// reordered, delayed, corrupted and truncated frames, chunked slow
// writes, half-closes, and timed partition windows. Every decision is a
// pure function of (seed, connectionId, direction, frameIndex) through
// SplitMix64 — never wall clock or global RNG — so a chaos schedule
// replays bit-identically from a single seed.
//
// Time-shaped faults (delay, stall, partition) are clamped to small
// bounds at construction so no expressible plan can wedge a test
// forever: chaos may slow a transport, never stop it unboundedly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace occm::exec::chaos {

enum class NetDirection : std::uint8_t {
  kSend = 0,  ///< frames this endpoint writes
  kRecv = 1,  ///< frames this endpoint reads
};

enum class NetFaultKind : std::uint8_t {
  kDrop,       ///< frame silently discarded
  kDuplicate,  ///< frame delivered twice
  kReorder,    ///< frame swapped with the next frame in its direction
  kCorrupt,    ///< one seeded bit flip (send: in the encoded frame;
               ///< recv: in an inbound raw chunk — poisons own framing)
  kTruncate,   ///< send only: frame cut short, stream poisoned for peer
  kStall,      ///< send only: slowloris — frame dribbled in tiny chunks
  kDelay,      ///< frame held for a bounded wall-clock delay
  kHalfClose,  ///< send only: shutdown(SHUT_WR) after frame N
  kPartition,  ///< all traffic in one direction blocked for a window
};

[[nodiscard]] constexpr const char* toString(NetFaultKind kind) noexcept {
  switch (kind) {
    case NetFaultKind::kDrop: return "drop";
    case NetFaultKind::kDuplicate: return "dup";
    case NetFaultKind::kReorder: return "reorder";
    case NetFaultKind::kCorrupt: return "corrupt";
    case NetFaultKind::kTruncate: return "truncate";
    case NetFaultKind::kStall: return "stall";
    case NetFaultKind::kDelay: return "delay";
    case NetFaultKind::kHalfClose: return "halfclose";
    case NetFaultKind::kPartition: return "partition";
  }
  return "unknown";
}

[[nodiscard]] constexpr const char* toString(NetDirection dir) noexcept {
  return dir == NetDirection::kSend ? "send" : "recv";
}

/// Open-ended frame window sentinel ("this fault never expires").
inline constexpr std::uint64_t kAllFrames = ~std::uint64_t{0};

// Bounds applied by the builders so no plan can stall unboundedly.
inline constexpr std::uint64_t kMaxDelayMs = 250;       ///< per-frame delay
inline constexpr std::uint64_t kMaxStallDelayMs = 50;   ///< per-chunk stall
inline constexpr std::uint64_t kMaxPartitionMs = 2000;  ///< partition window

/// One scripted fault over a window of frame indices [first, last]
/// (inclusive; kAllFrames = open-ended) in direction `dir`.
struct NetFaultEvent {
  NetFaultKind kind = NetFaultKind::kDrop;
  NetDirection dir = NetDirection::kSend;
  std::uint64_t first = 0;
  std::uint64_t last = kAllFrames;
  /// Per-frame firing probability in 1/256ths (256 = always).
  std::uint32_t prob256 = 256;
  /// delayMs (kDelay), keepBytes (kTruncate), chunkBytes (kStall),
  /// durationMs (kPartition); unused otherwise.
  std::uint64_t param = 0;
  /// Per-chunk delayMs (kStall); unused otherwise.
  std::uint64_t param2 = 0;
};

/// Builder for a chaos schedule. All builders clamp rather than reject:
/// probabilities to [0, 256], delays to the bounds above — an expressible
/// plan is always a safe plan. Parse errors (malformed specs) surface
/// through parseNetFaultPlan instead.
class NetFaultPlan {
 public:
  /// Frames in [first, last] are silently discarded with prob/256.
  NetFaultPlan& drop(NetDirection dir, std::uint64_t first, std::uint64_t last,
                     std::uint32_t prob256 = 256);

  /// Frames in the window are delivered twice.
  NetFaultPlan& duplicate(NetDirection dir, std::uint64_t first,
                          std::uint64_t last, std::uint32_t prob256 = 256);

  /// A firing frame is held and emitted after the next frame in its
  /// direction (adjacent swap). A frame still held at close is flushed
  /// at EOF (recv) or lost (send) — a tail drop, which the protocols
  /// must tolerate anyway.
  NetFaultPlan& reorder(NetDirection dir, std::uint64_t first,
                        std::uint64_t last, std::uint32_t prob256 = 256);

  /// One seeded bit flip. Send: in the encoded frame (peer sees a typed
  /// CRC/magic failure). Recv: in an inbound raw chunk, indexed by chunk
  /// — poisons this endpoint's own reassembler.
  NetFaultPlan& corrupt(NetDirection dir, std::uint64_t first,
                        std::uint64_t last, std::uint32_t prob256 = 256);

  /// Send only: the encoded frame is cut to at most `keepBytes` (always
  /// at least one byte short of complete), poisoning the stream for the
  /// peer at a deterministic offset.
  NetFaultPlan& truncate(std::uint64_t first, std::uint64_t last,
                         std::uint32_t prob256, std::uint64_t keepBytes);

  /// Send only: slowloris — the frame is written in `chunkBytes`-sized
  /// pieces with `delayMs` sleeps between them (clamped; chunk count is
  /// bounded so a stalled frame completes in bounded time).
  NetFaultPlan& stall(std::uint64_t first, std::uint64_t last,
                      std::uint32_t prob256, std::uint64_t chunkBytes,
                      std::uint64_t delayMs);

  /// Firing frames are held for `delayMs` (clamped to kMaxDelayMs).
  NetFaultPlan& delay(NetDirection dir, std::uint64_t first,
                      std::uint64_t last, std::uint32_t prob256,
                      std::uint64_t delayMs);

  /// shutdown(SHUT_WR) after send-frame `afterFrame` is emitted; later
  /// sends fail locally with a typed error.
  NetFaultPlan& halfClose(std::uint64_t afterFrame);

  /// Once frame index `atFrame` is reached in `dir`, all traffic in that
  /// direction is blocked for `durationMs` (clamped to kMaxPartitionMs):
  /// sends are swallowed, reads stalled. One direction models an
  /// asymmetric partition; add both directions for a full one.
  NetFaultPlan& partition(NetDirection dir, std::uint64_t atFrame,
                          std::uint64_t durationMs);

  [[nodiscard]] const std::vector<NetFaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Compact spec string, parseable by parseNetFaultPlan (round-trip).
  [[nodiscard]] std::string toSpec() const;

 private:
  NetFaultPlan& add(NetFaultEvent event);

  std::vector<NetFaultEvent> events_;
};

/// Parses the compact spec DSL: comma-separated events, fields separated
/// by ':'. Windows are `*` (all), `N`, `N-` (open-ended) or `N-M`.
///
///   drop:DIR:WINDOW:PROB          dup:DIR:WINDOW:PROB
///   reorder:DIR:WINDOW:PROB       corrupt:DIR:WINDOW:PROB
///   truncate:WINDOW:PROB:KEEP     stall:WINDOW:PROB:CHUNK:DELAYMS
///   delay:DIR:WINDOW:PROB:MS      halfclose:FRAME
///   partition:DIR:FRAME:MS
///
/// e.g. "drop:send:0-9:128,partition:recv:4:300,halfclose:12"
[[nodiscard]] Expected<NetFaultPlan, std::string> parseNetFaultPlan(
    std::string_view spec);

/// Seeded plan generator for soak suites: composes 2–5 bounded events
/// (windows within the first dozen frames, delays ≤ 40 ms, partitions
/// ≤ 400 ms) deterministically from `seed`. Same seed, same plan.
[[nodiscard]] NetFaultPlan planFromSeed(std::uint64_t seed);

}  // namespace occm::exec::chaos
