#include "exec/chaos/net_fault_plan.hpp"

#include <algorithm>
#include <charconv>

#include "common/rng.hpp"

namespace occm::exec::chaos {

namespace {

std::uint32_t clampProb(std::uint32_t prob256) {
  return std::min<std::uint32_t>(prob256, 256);
}

void orderWindow(std::uint64_t& first, std::uint64_t& last) {
  if (last < first) {
    std::swap(first, last);
  }
}

std::string windowSpec(std::uint64_t first, std::uint64_t last) {
  if (first == 0 && last == kAllFrames) {
    return "*";
  }
  if (last == kAllFrames) {
    return std::to_string(first) + "-";
  }
  if (first == last) {
    return std::to_string(first);
  }
  return std::to_string(first) + "-" + std::to_string(last);
}

}  // namespace

NetFaultPlan& NetFaultPlan::add(NetFaultEvent event) {
  events_.push_back(event);
  return *this;
}

NetFaultPlan& NetFaultPlan::drop(NetDirection dir, std::uint64_t first,
                                 std::uint64_t last, std::uint32_t prob256) {
  orderWindow(first, last);
  return add({NetFaultKind::kDrop, dir, first, last, clampProb(prob256), 0, 0});
}

NetFaultPlan& NetFaultPlan::duplicate(NetDirection dir, std::uint64_t first,
                                      std::uint64_t last,
                                      std::uint32_t prob256) {
  orderWindow(first, last);
  return add(
      {NetFaultKind::kDuplicate, dir, first, last, clampProb(prob256), 0, 0});
}

NetFaultPlan& NetFaultPlan::reorder(NetDirection dir, std::uint64_t first,
                                    std::uint64_t last, std::uint32_t prob256) {
  orderWindow(first, last);
  return add(
      {NetFaultKind::kReorder, dir, first, last, clampProb(prob256), 0, 0});
}

NetFaultPlan& NetFaultPlan::corrupt(NetDirection dir, std::uint64_t first,
                                    std::uint64_t last, std::uint32_t prob256) {
  orderWindow(first, last);
  return add(
      {NetFaultKind::kCorrupt, dir, first, last, clampProb(prob256), 0, 0});
}

NetFaultPlan& NetFaultPlan::truncate(std::uint64_t first, std::uint64_t last,
                                     std::uint32_t prob256,
                                     std::uint64_t keepBytes) {
  orderWindow(first, last);
  return add({NetFaultKind::kTruncate, NetDirection::kSend, first, last,
              clampProb(prob256), keepBytes, 0});
}

NetFaultPlan& NetFaultPlan::stall(std::uint64_t first, std::uint64_t last,
                                  std::uint32_t prob256,
                                  std::uint64_t chunkBytes,
                                  std::uint64_t delayMs) {
  orderWindow(first, last);
  return add({NetFaultKind::kStall, NetDirection::kSend, first, last,
              clampProb(prob256), std::max<std::uint64_t>(chunkBytes, 1),
              std::min(delayMs, kMaxStallDelayMs)});
}

NetFaultPlan& NetFaultPlan::delay(NetDirection dir, std::uint64_t first,
                                  std::uint64_t last, std::uint32_t prob256,
                                  std::uint64_t delayMs) {
  orderWindow(first, last);
  return add({NetFaultKind::kDelay, dir, first, last, clampProb(prob256),
              std::min(delayMs, kMaxDelayMs), 0});
}

NetFaultPlan& NetFaultPlan::halfClose(std::uint64_t afterFrame) {
  return add({NetFaultKind::kHalfClose, NetDirection::kSend, afterFrame,
              afterFrame, 256, 0, 0});
}

NetFaultPlan& NetFaultPlan::partition(NetDirection dir, std::uint64_t atFrame,
                                      std::uint64_t durationMs) {
  return add({NetFaultKind::kPartition, dir, atFrame, atFrame, 256,
              std::min(durationMs, kMaxPartitionMs), 0});
}

std::string NetFaultPlan::toSpec() const {
  std::string out;
  for (const NetFaultEvent& e : events_) {
    if (!out.empty()) {
      out += ',';
    }
    out += toString(e.kind);
    switch (e.kind) {
      case NetFaultKind::kDrop:
      case NetFaultKind::kDuplicate:
      case NetFaultKind::kReorder:
      case NetFaultKind::kCorrupt:
        out += std::string(":") + toString(e.dir) + ":" +
               windowSpec(e.first, e.last) + ":" + std::to_string(e.prob256);
        break;
      case NetFaultKind::kTruncate:
        out += ":" + windowSpec(e.first, e.last) + ":" +
               std::to_string(e.prob256) + ":" + std::to_string(e.param);
        break;
      case NetFaultKind::kStall:
        out += ":" + windowSpec(e.first, e.last) + ":" +
               std::to_string(e.prob256) + ":" + std::to_string(e.param) + ":" +
               std::to_string(e.param2);
        break;
      case NetFaultKind::kDelay:
        out += std::string(":") + toString(e.dir) + ":" +
               windowSpec(e.first, e.last) + ":" + std::to_string(e.prob256) +
               ":" + std::to_string(e.param);
        break;
      case NetFaultKind::kHalfClose:
        out += ":" + std::to_string(e.first);
        break;
      case NetFaultKind::kPartition:
        out += std::string(":") + toString(e.dir) + ":" +
               std::to_string(e.first) + ":" + std::to_string(e.param);
        break;
    }
  }
  return out;
}

namespace {

std::vector<std::string_view> splitOn(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t next = text.find(sep, at);
    if (next == std::string_view::npos) {
      parts.push_back(text.substr(at));
      break;
    }
    parts.push_back(text.substr(at, next - at));
    at = next + 1;
  }
  return parts;
}

bool parseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parseDir(std::string_view text, NetDirection* out) {
  if (text == "send") {
    *out = NetDirection::kSend;
    return true;
  }
  if (text == "recv") {
    *out = NetDirection::kRecv;
    return true;
  }
  return false;
}

bool parseWindow(std::string_view text, std::uint64_t* first,
                 std::uint64_t* last) {
  if (text == "*") {
    *first = 0;
    *last = kAllFrames;
    return true;
  }
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    if (!parseU64(text, first)) {
      return false;
    }
    *last = *first;
    return true;
  }
  if (!parseU64(text.substr(0, dash), first)) {
    return false;
  }
  const std::string_view tail = text.substr(dash + 1);
  if (tail.empty()) {
    *last = kAllFrames;
    return true;
  }
  return parseU64(tail, last) && *last >= *first;
}

}  // namespace

Expected<NetFaultPlan, std::string> parseNetFaultPlan(std::string_view spec) {
  NetFaultPlan plan;
  if (spec.empty()) {
    return plan;
  }
  for (const std::string_view eventSpec : splitOn(spec, ',')) {
    const auto fields = splitOn(eventSpec, ':');
    const auto bad = [&](const char* why) {
      return makeUnexpected("bad chaos event '" + std::string(eventSpec) +
                            "': " + why);
    };
    if (fields.empty() || fields[0].empty()) {
      return bad("missing fault kind");
    }
    const std::string_view kind = fields[0];
    NetDirection dir = NetDirection::kSend;
    std::uint64_t first = 0;
    std::uint64_t last = kAllFrames;
    std::uint64_t prob = 256;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (kind == "drop" || kind == "dup" || kind == "reorder" ||
        kind == "corrupt") {
      if (fields.size() != 4 || !parseDir(fields[1], &dir) ||
          !parseWindow(fields[2], &first, &last) ||
          !parseU64(fields[3], &prob) || prob > 256) {
        return bad("want KIND:DIR:WINDOW:PROB with prob in [0,256]");
      }
      if (kind == "drop") {
        plan.drop(dir, first, last, static_cast<std::uint32_t>(prob));
      } else if (kind == "dup") {
        plan.duplicate(dir, first, last, static_cast<std::uint32_t>(prob));
      } else if (kind == "reorder") {
        plan.reorder(dir, first, last, static_cast<std::uint32_t>(prob));
      } else {
        plan.corrupt(dir, first, last, static_cast<std::uint32_t>(prob));
      }
    } else if (kind == "truncate") {
      if (fields.size() != 4 || !parseWindow(fields[1], &first, &last) ||
          !parseU64(fields[2], &prob) || prob > 256 ||
          !parseU64(fields[3], &a)) {
        return bad("want truncate:WINDOW:PROB:KEEPBYTES");
      }
      plan.truncate(first, last, static_cast<std::uint32_t>(prob), a);
    } else if (kind == "stall") {
      if (fields.size() != 5 || !parseWindow(fields[1], &first, &last) ||
          !parseU64(fields[2], &prob) || prob > 256 ||
          !parseU64(fields[3], &a) || a == 0 || !parseU64(fields[4], &b)) {
        return bad("want stall:WINDOW:PROB:CHUNKBYTES:DELAYMS");
      }
      plan.stall(first, last, static_cast<std::uint32_t>(prob), a, b);
    } else if (kind == "delay") {
      if (fields.size() != 5 || !parseDir(fields[1], &dir) ||
          !parseWindow(fields[2], &first, &last) ||
          !parseU64(fields[3], &prob) || prob > 256 ||
          !parseU64(fields[4], &a)) {
        return bad("want delay:DIR:WINDOW:PROB:DELAYMS");
      }
      plan.delay(dir, first, last, static_cast<std::uint32_t>(prob), a);
    } else if (kind == "halfclose") {
      if (fields.size() != 2 || !parseU64(fields[1], &first)) {
        return bad("want halfclose:FRAME");
      }
      plan.halfClose(first);
    } else if (kind == "partition") {
      if (fields.size() != 4 || !parseDir(fields[1], &dir) ||
          !parseU64(fields[2], &first) || !parseU64(fields[3], &a)) {
        return bad("want partition:DIR:FRAME:DURATIONMS");
      }
      plan.partition(dir, first, a);
    } else {
      return bad("unknown fault kind");
    }
  }
  return plan;
}

NetFaultPlan planFromSeed(std::uint64_t seed) {
  SplitMix64 sm(seed ^ 0xc4a05ed1bba63d1bULL);
  NetFaultPlan plan;
  const std::uint32_t count = 2 + static_cast<std::uint32_t>(sm.next() % 4);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NetDirection dir =
        sm.next() % 2 == 0 ? NetDirection::kSend : NetDirection::kRecv;
    const std::uint64_t first = sm.next() % 8;
    const std::uint64_t last = first + 1 + sm.next() % 10;
    const std::uint32_t prob = 64 + static_cast<std::uint32_t>(sm.next() % 193);
    // Weighted pick: the common message-level faults dominate; the
    // session-ending ones (halfclose) and the slow ones (partition,
    // stall) appear but stay rare enough that most sessions make
    // progress quickly.
    switch (sm.next() % 12) {
      case 0:
      case 1:
      case 2:
        plan.drop(dir, first, last, prob);
        break;
      case 3:
      case 4:
        plan.duplicate(dir, first, last, prob);
        break;
      case 5:
      case 6:
        plan.reorder(dir, first, last, prob);
        break;
      case 7:
        plan.corrupt(dir, first, last, 32 + prob / 4);
        break;
      case 8:
        plan.truncate(first, last, 32 + prob / 4, sm.next() % 16);
        break;
      case 9:
        plan.stall(first, last, prob, 1 + sm.next() % 7, 1 + sm.next() % 5);
        break;
      case 10:
        plan.delay(dir, first, last, prob, 1 + sm.next() % 40);
        break;
      default:
        plan.partition(dir, sm.next() % 12, 50 + sm.next() % 350);
        break;
    }
  }
  // A tail half-close on roughly every fourth seed: late enough that the
  // session usually finished its business, early enough to exercise the
  // half-closed write paths.
  if (sm.next() % 4 == 0) {
    plan.halfClose(6 + sm.next() % 26);
  }
  return plan;
}

}  // namespace occm::exec::chaos
