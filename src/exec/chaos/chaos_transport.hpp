#pragma once

// Seeded fault-injecting FrameTransport: the network analogue of
// fault/FaultEngine. Wraps a duplex fd pair and applies a NetFaultPlan's
// scheduled faults to both directions — drops, duplicates, adjacent
// reorders, bit flips, truncations, chunked slow writes, per-frame
// delays, half-closes and timed partitions — each decided by a pure
// function of (seed, connectionId, direction, frameIndex), so any
// observed interleaving replays from its seed.
//
// Zero cost when not installed: production paths construct plain
// FdFrameTransports unless a TransportFactory is injected, so no chaos
// code runs on the default path at all. An installed transport with an
// empty plan is a byte-identical passthrough.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/chaos/net_fault_plan.hpp"
#include "exec/frame_transport.hpp"

namespace occm::exec::chaos {

/// Everything a chaos transport needs besides the fd: the schedule and
/// the seed it replays from. connectionId is supplied per connection by
/// the TransportFactory so concurrent connections decorrelate while each
/// stays reproducible.
struct ChaosConfig {
  NetFaultPlan plan;
  std::uint64_t seed = 0;

  [[nodiscard]] bool enabled() const noexcept { return !plan.empty(); }
};

/// The one hash behind every chaos decision — exposed so tests can pin
/// schedule determinism without a socket in sight.
[[nodiscard]] std::uint64_t chaosMix(std::uint64_t seed,
                                     std::uint64_t connectionId,
                                     std::size_t eventIndex,
                                     std::uint64_t frameIndex,
                                     std::uint64_t salt) noexcept;

/// Whether `event` (at `eventIndex` in its plan) fires for `frameIndex`
/// in `dir`: window containment plus the seeded prob256 draw. Pure.
[[nodiscard]] bool faultFires(const NetFaultEvent& event,
                              std::size_t eventIndex, std::uint64_t seed,
                              std::uint64_t connectionId, NetDirection dir,
                              std::uint64_t frameIndex) noexcept;

/// FrameTransport over fds with a fault schedule between the caller and
/// the wire. Owns the fds. Send-side faults mutate what the peer sees;
/// recv-side faults mutate what this endpoint delivers (byte corruption
/// lands below its own reassembler, frame faults above it).
class ChaosFrameTransport final : public FrameTransport {
 public:
  /// Takes ownership of the fds (same fd twice for a duplex socket).
  ChaosFrameTransport(int readFd, int writeFd, bool isSocket,
                      ChaosConfig config, std::uint64_t connectionId);
  ~ChaosFrameTransport() override;

  ChaosFrameTransport(const ChaosFrameTransport&) = delete;
  ChaosFrameTransport& operator=(const ChaosFrameTransport&) = delete;

  bool sendFrame(std::string_view payload) override;
  RecvStatus recvFrame(std::string& payload, int timeoutMs) override;
  [[nodiscard]] std::string lastError() const override { return lastError_; }
  [[nodiscard]] int pollFd() const noexcept override { return readFd_; }
  [[nodiscard]] std::uint64_t bytesReceived() const noexcept override {
    return rxBytes_;
  }
  [[nodiscard]] std::size_t partialBytes() const noexcept override {
    return reassembler_.buffered();
  }

 private:
  /// Writes one encoded frame, chunked-and-slept when `stall` is set.
  bool emitFrame(std::string_view frame,
                 std::optional<std::pair<std::uint64_t, std::uint64_t>> stall);
  /// Arms/evaluates partition windows for `dir` at `frameIndex`.
  bool partitionActive(NetDirection dir, std::uint64_t frameIndex);
  /// Runs the recv-side frame faults for one extracted payload.
  void admitRecvFrame(std::string&& payload);

  int readFd_;
  int writeFd_;
  bool isSocket_;
  ChaosConfig config_;
  std::uint64_t connectionId_;

  FrameReassembler reassembler_;
  std::string lastError_;
  std::uint64_t rxBytes_ = 0;

  std::uint64_t sendIndex_ = 0;   ///< frames the caller asked to send
  std::uint64_t recvIndex_ = 0;   ///< frames extracted from the wire
  std::uint64_t chunkIndex_ = 0;  ///< raw read chunks (recv corruption key)
  bool halfClosed_ = false;

  std::optional<std::string> heldSend_;  ///< reorder hold (encoded frame)
  std::optional<std::string> heldRecv_;  ///< reorder hold (payload)
  std::deque<std::string> readyRecv_;    ///< post-fault deliverable payloads

  struct PartitionState {
    bool armed = false;
    std::chrono::steady_clock::time_point until{};
  };
  std::vector<PartitionState> partitions_;  ///< parallel to plan events
};

/// Chaos wrapper over one duplex socket fd (takes ownership).
[[nodiscard]] std::unique_ptr<FrameTransport> makeChaosSocketTransport(
    int fd, ChaosConfig config, std::uint64_t connectionId);

/// TransportFactory for the coordinator/server/worker injection points:
/// each connection gets a chaos transport replaying `config.plan` under
/// (config.seed, connectionId). With a disabled config the factory
/// builds plain transports — handy for flag plumbing.
[[nodiscard]] TransportFactory chaosTransportFactory(ChaosConfig config);

}  // namespace occm::exec::chaos
