#include "exec/chaos/chaos_transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.hpp"

namespace occm::exec::chaos {

namespace {

void sleepMs(std::uint64_t ms) {
  if (ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

int remainingMs(std::chrono::steady_clock::time_point deadline, bool armed) {
  if (!armed) {
    return -1;
  }
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

void flipBit(std::string& bytes, std::uint64_t pick) {
  if (bytes.empty()) {
    return;
  }
  const std::uint64_t bit = pick % (bytes.size() * 8);
  bytes[bit / 8] = static_cast<char>(
      static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
}

}  // namespace

std::uint64_t chaosMix(std::uint64_t seed, std::uint64_t connectionId,
                       std::size_t eventIndex, std::uint64_t frameIndex,
                       std::uint64_t salt) noexcept {
  SplitMix64 sm(seed ^ (connectionId * 0x9e3779b97f4a7c15ULL) ^
                (static_cast<std::uint64_t>(eventIndex) *
                 0xbf58476d1ce4e5b9ULL) ^
                (frameIndex * 0x94d049bb133111ebULL) ^ salt);
  return sm.next();
}

bool faultFires(const NetFaultEvent& event, std::size_t eventIndex,
                std::uint64_t seed, std::uint64_t connectionId,
                NetDirection dir, std::uint64_t frameIndex) noexcept {
  if (event.dir != dir || frameIndex < event.first ||
      frameIndex > event.last) {
    return false;
  }
  if (event.prob256 >= 256) {
    return true;
  }
  return chaosMix(seed, connectionId, eventIndex, frameIndex,
                  static_cast<std::uint64_t>(dir)) %
             256 <
         event.prob256;
}

ChaosFrameTransport::ChaosFrameTransport(int readFd, int writeFd,
                                         bool isSocket, ChaosConfig config,
                                         std::uint64_t connectionId)
    : readFd_(readFd),
      writeFd_(writeFd),
      isSocket_(isSocket),
      config_(std::move(config)),
      connectionId_(connectionId),
      partitions_(config_.plan.events().size()) {}

ChaosFrameTransport::~ChaosFrameTransport() {
  if (readFd_ >= 0) {
    ::close(readFd_);
  }
  if (writeFd_ >= 0 && writeFd_ != readFd_) {
    ::close(writeFd_);
  }
}

bool ChaosFrameTransport::partitionActive(NetDirection dir,
                                          std::uint64_t frameIndex) {
  const auto& events = config_.plan.events();
  const auto now = std::chrono::steady_clock::now();
  bool active = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NetFaultEvent& e = events[i];
    if (e.kind != NetFaultKind::kPartition || e.dir != dir) {
      continue;
    }
    PartitionState& st = partitions_[i];
    if (!st.armed && frameIndex >= e.first) {
      st.armed = true;
      st.until = now + std::chrono::milliseconds(e.param);
    }
    if (st.armed && now < st.until) {
      active = true;
    }
  }
  return active;
}

bool ChaosFrameTransport::emitFrame(
    std::string_view frame,
    std::optional<std::pair<std::uint64_t, std::uint64_t>> stall) {
  if (!stall) {
    return sendAllBytes(writeFd_, frame, isSocket_);
  }
  // Bound the chunk count so one stalled frame completes in bounded
  // time no matter how small the requested chunk is.
  constexpr std::uint64_t kMaxChunks = 16;
  std::uint64_t chunk = std::max<std::uint64_t>(stall->first, 1);
  if (frame.size() > chunk * kMaxChunks) {
    chunk = frame.size() / kMaxChunks + 1;
  }
  for (std::size_t at = 0; at < frame.size();
       at += static_cast<std::size_t>(chunk)) {
    if (!sendAllBytes(writeFd_, frame.substr(at, chunk), isSocket_)) {
      return false;
    }
    sleepMs(std::min(stall->second, kMaxStallDelayMs));
  }
  return true;
}

bool ChaosFrameTransport::sendFrame(std::string_view payload) {
  const std::uint64_t idx = sendIndex_++;
  if (halfClosed_) {
    lastError_ = "chaos: write side half-closed by plan";
    return false;
  }
  std::string frame = encodeFrame(payload);

  bool drop = partitionActive(NetDirection::kSend, idx);
  bool dup = false;
  bool reorder = false;
  bool closeAfter = false;
  std::uint64_t delayMs = 0;
  std::optional<std::uint64_t> keepBytes;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> stall;

  const auto& events = config_.plan.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NetFaultEvent& e = events[i];
    const bool fires = faultFires(e, i, config_.seed, connectionId_,
                                  NetDirection::kSend, idx);
    switch (e.kind) {
      case NetFaultKind::kDrop:
        drop = drop || fires;
        break;
      case NetFaultKind::kDuplicate:
        dup = dup || fires;
        break;
      case NetFaultKind::kReorder:
        reorder = reorder || fires;
        break;
      case NetFaultKind::kCorrupt:
        if (fires) {
          flipBit(frame, chaosMix(config_.seed, connectionId_, i, idx, 0x1f));
        }
        break;
      case NetFaultKind::kTruncate:
        if (fires) {
          keepBytes = e.param;
        }
        break;
      case NetFaultKind::kStall:
        if (fires) {
          stall = {e.param, e.param2};
        }
        break;
      case NetFaultKind::kDelay:
        if (fires) {
          delayMs += e.param;
        }
        break;
      case NetFaultKind::kHalfClose:
        if (idx >= e.first) {
          closeAfter = true;
        }
        break;
      case NetFaultKind::kPartition:
        break;  // handled by partitionActive above
    }
  }

  sleepMs(std::min(delayMs, kMaxDelayMs));
  if (keepBytes && frame.size() > 1) {
    // Always cut at least one byte so the peer's stream really poisons.
    frame.resize(static_cast<std::size_t>(std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(*keepBytes, frame.size() - 1))));
  }

  bool ok = true;
  if (!drop) {
    if (reorder && !heldSend_) {
      heldSend_ = std::move(frame);
    } else {
      ok = emitFrame(frame, stall);
      if (ok && dup) {
        ok = emitFrame(frame, std::nullopt);
      }
      if (ok && heldSend_) {
        ok = emitFrame(*heldSend_, std::nullopt);
        heldSend_.reset();
      }
    }
  }
  if (closeAfter) {
    if (isSocket_) {
      ::shutdown(writeFd_, SHUT_WR);
    }
    halfClosed_ = true;
  }
  if (!ok) {
    lastError_ = std::string("send: ") + std::strerror(errno);
  }
  return ok;
}

void ChaosFrameTransport::admitRecvFrame(std::string&& payload) {
  const std::uint64_t idx = recvIndex_++;
  bool drop = false;
  bool dup = false;
  bool reorder = false;
  std::uint64_t delayMs = 0;

  const auto& events = config_.plan.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NetFaultEvent& e = events[i];
    const bool fires = faultFires(e, i, config_.seed, connectionId_,
                                  NetDirection::kRecv, idx);
    if (!fires) {
      continue;
    }
    switch (e.kind) {
      case NetFaultKind::kDrop:
        drop = true;
        break;
      case NetFaultKind::kDuplicate:
        dup = true;
        break;
      case NetFaultKind::kReorder:
        reorder = true;
        break;
      case NetFaultKind::kDelay:
        delayMs += e.param;
        break;
      default:
        break;  // corrupt keys on chunks; the rest are send-side
    }
  }

  sleepMs(std::min(delayMs, kMaxDelayMs));
  if (drop) {
    return;
  }
  if (reorder && !heldRecv_) {
    heldRecv_ = std::move(payload);
    return;
  }
  readyRecv_.push_back(std::move(payload));
  if (dup) {
    std::string copy = readyRecv_.back();
    readyRecv_.push_back(std::move(copy));
  }
  if (heldRecv_) {
    readyRecv_.push_back(std::move(*heldRecv_));
    heldRecv_.reset();
  }
}

FrameTransport::RecvStatus ChaosFrameTransport::recvFrame(std::string& payload,
                                                          int timeoutMs) {
  if (!readyRecv_.empty()) {
    payload = std::move(readyRecv_.front());
    readyRecv_.pop_front();
    return RecvStatus::kFrame;
  }
  const bool armed = timeoutMs >= 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  char chunk[4096];
  for (;;) {
    if (partitionActive(NetDirection::kRecv, recvIndex_)) {
      // Partitioned: the peer appears silent. Bytes pile up in the
      // kernel buffer and are delivered when the window lifts —
      // stream semantics hold, unlike byte loss, which TCP never gives
      // you. Partition windows are clamped, so this always terminates.
      if (armed && remainingMs(deadline, armed) == 0) {
        // 1 ms nap so a timeout-0 drain loop cannot busy-spin on the
        // POLLIN that the buffered-but-blocked bytes keep asserting.
        sleepMs(1);
        return RecvStatus::kTimeout;
      }
      sleepMs(5);
      continue;
    }
    struct pollfd pfd;
    pfd.fd = readFd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, remainingMs(deadline, armed));
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      lastError_ = std::string("poll: ") + std::strerror(errno);
      return RecvStatus::kError;
    }
    if (rc == 0) {
      return RecvStatus::kTimeout;
    }
    const ssize_t n = ::read(readFd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      lastError_ = std::string("read: ") + std::strerror(errno);
      return RecvStatus::kError;
    }
    if (n == 0) {
      // Orderly EOF: flush a held reordered frame — at stream end there
      // is no "next frame" to swap with, so it simply arrives last.
      if (heldRecv_) {
        readyRecv_.push_back(std::move(*heldRecv_));
        heldRecv_.reset();
      }
      if (!readyRecv_.empty()) {
        payload = std::move(readyRecv_.front());
        readyRecv_.pop_front();
        return RecvStatus::kFrame;
      }
      return RecvStatus::kClosed;
    }
    rxBytes_ += static_cast<std::uint64_t>(n);
    std::string_view data(chunk, static_cast<std::size_t>(n));
    std::string mutated;
    const std::uint64_t cidx = chunkIndex_++;
    const auto& events = config_.plan.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const NetFaultEvent& e = events[i];
      if (e.kind == NetFaultKind::kCorrupt &&
          faultFires(e, i, config_.seed, connectionId_, NetDirection::kRecv,
                     cidx)) {
        if (mutated.empty()) {
          mutated.assign(data);
        }
        flipBit(mutated, chaosMix(config_.seed, connectionId_, i, cidx, 0x2f));
        data = mutated;
      }
    }
    if (!reassembler_.feed(data)) {
      lastError_ = reassembler_.error().message();
      return RecvStatus::kCorrupt;
    }
    while (auto frame = reassembler_.next()) {
      admitRecvFrame(std::move(*frame));
    }
    if (!readyRecv_.empty()) {
      payload = std::move(readyRecv_.front());
      readyRecv_.pop_front();
      return RecvStatus::kFrame;
    }
  }
}

std::unique_ptr<FrameTransport> makeChaosSocketTransport(
    int fd, ChaosConfig config, std::uint64_t connectionId) {
  return std::make_unique<ChaosFrameTransport>(fd, fd, /*isSocket=*/true,
                                               std::move(config),
                                               connectionId);
}

TransportFactory chaosTransportFactory(ChaosConfig config) {
  if (!config.enabled()) {
    return [](int fd, std::uint64_t) { return makeSocketTransport(fd); };
  }
  return [config](int fd, std::uint64_t connectionId) {
    return makeChaosSocketTransport(fd, config, connectionId);
  };
}

}  // namespace occm::exec::chaos
