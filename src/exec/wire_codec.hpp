#pragma once

// Fixed-width little-endian wire codec shared by every exec serializer:
// the pipe IPC frames of the isolation supervisor (exec/ipc) and the TCP
// messages of the distributed coordinator/worker protocol
// (exec/distributed/protocol). One implementation means one set of
// bounds-check semantics: every read is checked, counts and string
// lengths are capped, and the first deviation latches a typed IpcError
// naming the byte offset — never a throw, never UB on arbitrary bytes.

#include <cstdint>
#include <string>
#include <string_view>

#include "exec/ipc.hpp"
#include "perf/run_profile.hpp"

namespace occm::exec::wire {

/// Caps on decoded sizes: a corrupt length must never drive a huge
/// allocation. Generous for real payloads (a 48-core machine ships a few
/// hundred counters), tight enough that a fuzzer can't balloon memory.
inline constexpr std::size_t kMaxString = std::size_t{1} << 20;
inline constexpr std::size_t kMaxCount = std::size_t{1} << 20;

void putU8(std::string& out, std::uint8_t value);
void putU32(std::string& out, std::uint32_t value);
void putU64(std::string& out, std::uint64_t value);
void putI32(std::string& out, std::int32_t value);
void putF64(std::string& out, double value);
void putString(std::string& out, const std::string& value);

/// Bounds-checked cursor over untrusted bytes. The first failed read
/// latches the error; subsequent reads return zeros so callers can decode
/// straight-line and check ok() once per structure.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] IpcError error() const { return error_; }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == bytes_.size(); }

  void fail(const std::string& detail, bool truncated = false);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  std::string str();
  /// Element count for a vector; capped so corrupt bytes cannot reserve
  /// gigabytes.
  std::size_t count(const char* what);

 private:
  bool need(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  IpcError error_;
};

/// Serializes a full RunProfile (everything but the trace — see
/// exec/ipc.hpp) in the isolation frame's canonical field order.
void putProfile(std::string& out, const perf::RunProfile& profile);
/// Decodes what putProfile produced; deviations latch into the Reader.
[[nodiscard]] perf::RunProfile readProfile(Reader& in);

}  // namespace occm::exec::wire
