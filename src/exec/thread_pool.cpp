#include "exec/thread_pool.hpp"

#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace occm::exec {

int resolveWorkerCount(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("OCCM_SWEEP_WORKERS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value <= 4096) {
      return static_cast<int>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(ThreadPoolConfig config) {
  const int workerCount = resolveWorkerCount(config.workers);
  capacity_ = config.queueCapacity != 0
                  ? config.queueCapacity
                  : static_cast<std::size_t>(workerCount) * 2;
  workers_.reserve(static_cast<std::size_t>(workerCount));
  for (int i = 0; i < workerCount; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  notEmpty_.notify_all();
  notFull_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  OCCM_REQUIRE_MSG(task != nullptr, "null task");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++blockedSubmitters_;
    notFull_.wait(lock,
                  [this] { return queue_.size() < capacity_ || stopping_; });
    --blockedSubmitters_;
    if (stopping_) {
      // cancel() waits until blockedSubmitters_ drops to zero, so a
      // submitter woken here has fully left the queue wait by the time a
      // cancel() -> destroy sequence joins the workers.
      const bool wasCancelled = cancelled_;
      submittersIdle_.notify_all();
      lock.unlock();
      OCCM_REQUIRE_MSG(!wasCancelled, "submit on a cancelled ThreadPool");
      OCCM_REQUIRE_MSG(false, "submit on a stopping ThreadPool");
    }
    queue_.push_back(std::move(packaged));
  }
  notEmpty_.notify_one();
  return future;
}

bool ThreadPool::trySubmit(std::function<void()> task,
                           std::future<void>* future) {
  OCCM_REQUIRE_MSG(task != nullptr, "null task");
  std::packaged_task<void()> packaged(std::move(task));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) {
      return false;
    }
    if (future != nullptr) {
      *future = packaged.get_future();
    }
    queue_.push_back(std::move(packaged));
  }
  notEmpty_.notify_one();
  return true;
}

void ThreadPool::cancel() {
  // Move the queued tasks out under the lock but destroy them outside it:
  // ~packaged_task publishes broken_promise to each future, and waking
  // those waiters is not work to do while holding the pool mutex.
  std::deque<std::packaged_task<void()>> discarded;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    cancelled_ = true;
    discarded.swap(queue_);
    notEmpty_.notify_all();
    notFull_.notify_all();
    // Hold the door until every submitter blocked on backpressure has
    // observed the cancellation and left the wait; after that, destroying
    // the pool cannot race a submit() that is still inside it.
    submittersIdle_.wait(lock, [this] { return blockedSubmitters_ == 0; });
  }
}

bool ThreadPool::cancelled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

std::size_t ThreadPool::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      notEmpty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    notFull_.notify_one();
    task();  // packaged_task captures anything the task throws
  }
}

}  // namespace occm::exec
