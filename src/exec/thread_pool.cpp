#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace occm::exec {

int resolveWorkerCount(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("OCCM_SWEEP_WORKERS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value <= 4096) {
      return static_cast<int>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(ThreadPoolConfig config)
    : queueOccupancy_(
          std::max<Cycles>(1, static_cast<Cycles>(config.occupancyWindowNs)),
          obs::MetricKind::kGauge) {
  const int workerCount = resolveWorkerCount(config.workers);
  capacity_ = config.queueCapacity != 0
                  ? config.queueCapacity
                  : static_cast<std::size_t>(workerCount) * 2;
  if constexpr (obs::kCompiledIn) {
    epochNs_ = obs::steadyNowNs();
  }
  // Slots must exist before the first worker can touch them.
  for (int i = 0; i < workerCount; ++i) {
    slots_.emplace_back();
  }
  workers_.reserve(static_cast<std::size_t>(workerCount));
  for (int i = 0; i < workerCount; ++i) {
    workers_.emplace_back(
        [this, i] { workerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  notEmpty_.notify_all();
  notFull_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::recordOccupancyLocked() {
  if constexpr (obs::kCompiledIn) {
    queueOccupancy_.record(
        static_cast<Cycles>(obs::steadyNowNs() - epochNs_),
        static_cast<double>(queue_.size()));
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  OCCM_REQUIRE_MSG(task != nullptr, "null task");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure telemetry: read the clock only when this submit will
    // actually block, so the uncontended path stays clock-free.
    std::uint64_t blockStartNs = 0;
    if constexpr (obs::kCompiledIn) {
      if (queue_.size() >= capacity_ && !stopping_) {
        blockStartNs = obs::steadyNowNs();
      }
    }
    ++blockedSubmitters_;
    notFull_.wait(lock,
                  [this] { return queue_.size() < capacity_ || stopping_; });
    --blockedSubmitters_;
    if constexpr (obs::kCompiledIn) {
      if (blockStartNs != 0) {
        submitBlockNs_ += obs::steadyNowNs() - blockStartNs;
      }
    }
    if (stopping_) {
      // cancel() waits until blockedSubmitters_ drops to zero, so a
      // submitter woken here has fully left the queue wait by the time a
      // cancel() -> destroy sequence joins the workers.
      const bool wasCancelled = cancelled_;
      submittersIdle_.notify_all();
      lock.unlock();
      OCCM_REQUIRE_MSG(!wasCancelled, "submit on a cancelled ThreadPool");
      OCCM_REQUIRE_MSG(false, "submit on a stopping ThreadPool");
    }
    Entry entry{std::move(packaged), 0};
    if constexpr (obs::kCompiledIn) {
      entry.enqueueNs = obs::steadyNowNs();
      ++submitted_;
    }
    queue_.push_back(std::move(entry));
    if constexpr (obs::kCompiledIn) {
      maxQueueDepth_ = std::max<std::uint64_t>(maxQueueDepth_, queue_.size());
      recordOccupancyLocked();
    }
  }
  notEmpty_.notify_one();
  return future;
}

bool ThreadPool::trySubmit(std::function<void()> task,
                           std::future<void>* future) {
  OCCM_REQUIRE_MSG(task != nullptr, "null task");
  std::packaged_task<void()> packaged(std::move(task));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) {
      return false;
    }
    if (future != nullptr) {
      *future = packaged.get_future();
    }
    Entry entry{std::move(packaged), 0};
    if constexpr (obs::kCompiledIn) {
      entry.enqueueNs = obs::steadyNowNs();
      ++submitted_;
    }
    queue_.push_back(std::move(entry));
    if constexpr (obs::kCompiledIn) {
      maxQueueDepth_ = std::max<std::uint64_t>(maxQueueDepth_, queue_.size());
      recordOccupancyLocked();
    }
  }
  notEmpty_.notify_one();
  return true;
}

void ThreadPool::cancel() {
  // Move the queued tasks out under the lock but destroy them outside it:
  // ~packaged_task publishes broken_promise to each future, and waking
  // those waiters is not work to do while holding the pool mutex.
  std::deque<Entry> discarded;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    cancelled_ = true;
    discarded.swap(queue_);
    recordOccupancyLocked();
    notEmpty_.notify_all();
    notFull_.notify_all();
    // Hold the door until every submitter blocked on backpressure has
    // observed the cancellation and left the wait; after that, destroying
    // the pool cannot race a submit() that is still inside it.
    submittersIdle_.wait(lock, [this] { return blockedSubmitters_ == 0; });
  }
}

bool ThreadPool::cancelled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

std::size_t ThreadPool::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  if constexpr (!obs::kCompiledIn) {
    return out;  // nothing was recorded; keep the documented empty shape
  }
  out.workers.reserve(slots_.size());
  for (const WorkerSlot& slot : slots_) {
    out.workers.push_back(
        {slot.tasks.load(std::memory_order_relaxed),
         slot.busyNs.load(std::memory_order_relaxed),
         slot.queueWaitNs.load(std::memory_order_relaxed)});
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  out.submitted = submitted_;
  out.submitBlockNs = submitBlockNs_;
  out.maxQueueDepth = maxQueueDepth_;
  out.queueOccupancy = queueOccupancy_;
  return out;
}

void ThreadPool::workerLoop(std::size_t slot) {
  while (true) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      notEmpty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      entry = std::move(queue_.front());
      queue_.pop_front();
      recordOccupancyLocked();
    }
    notFull_.notify_one();
    if constexpr (obs::kCompiledIn) {
      WorkerSlot& mine = slots_[slot];
      const std::uint64_t startNs = obs::steadyNowNs();
      mine.queueWaitNs.fetch_add(startNs - entry.enqueueNs,
                                 std::memory_order_relaxed);
      mine.tasks.fetch_add(1, std::memory_order_relaxed);
      entry.task();  // packaged_task captures anything the task throws
      mine.busyNs.fetch_add(obs::steadyNowNs() - startNs,
                            std::memory_order_relaxed);
    } else {
      entry.task();  // packaged_task captures anything the task throws
    }
  }
}

}  // namespace occm::exec
