#pragma once

// Generalizes exec/ipc's length-prefixed CRC-32 frame codec from "one
// frame, read to EOF on a pipe" to byte streams: a FrameReassembler that
// accepts arbitrary chunks (sockets fragment and coalesce at will) and
// yields complete validated payloads, plus a FrameTransport abstraction
// with pipe and socket implementations for blocking framed message
// exchange with deadlines.
//
// Robustness contract, same spirit as the pipe decoder:
//  - Every header field is validated before its payload is buffered; a
//    declared length above the max-frame guard is rejected immediately
//    (no allocation proportional to attacker-controlled bytes).
//  - Any deviation (bad magic, oversized length, CRC mismatch) poisons
//    the reassembler with a typed IpcError naming the byte offset in the
//    stream; the owner drops the connection — a corrupt stream is never
//    resynchronized, because a flipped length field makes every later
//    frame boundary untrustworthy.
//  - No exception is ever thrown on bad bytes; fuzz/fuzz_wire_message.cpp
//    drives feed() with libFuzzer.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "exec/ipc.hpp"

namespace occm::exec {

/// Incremental frame parser over an untrusted byte stream.
class FrameReassembler {
 public:
  explicit FrameReassembler(std::uint32_t maxPayload = kMaxFramePayload)
      : maxPayload_(maxPayload) {}

  /// Appends stream bytes and extracts every complete frame. Returns
  /// false once the stream is poisoned (corrupt() / error() explain);
  /// further feeds are ignored.
  bool feed(std::string_view bytes);

  /// Next complete payload in arrival order, or nullopt.
  [[nodiscard]] std::optional<std::string> next();

  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }
  [[nodiscard]] const IpcError& error() const noexcept { return error_; }
  /// Bytes buffered awaiting a complete frame (bounded by the max-frame
  /// guard plus one read chunk).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t framesExtracted() const noexcept {
    return framesExtracted_;
  }

 private:
  void poison(std::size_t offsetInFrame, const std::string& detail,
              bool truncated);

  std::uint32_t maxPayload_;
  std::string buffer_;
  std::deque<std::string> ready_;
  /// Bytes consumed from the stream before the frame currently being
  /// assembled — error offsets name a position in the whole stream.
  std::size_t consumed_ = 0;
  std::size_t framesExtracted_ = 0;
  bool corrupt_ = false;
  IpcError error_;
};

/// Blocking framed message exchange over a byte stream. One frame per
/// send; receive polls with a deadline so callers can interleave
/// heartbeats and liveness checks with message waits.
class FrameTransport {
 public:
  enum class RecvStatus : std::uint8_t {
    kFrame,    ///< a complete validated payload was produced
    kTimeout,  ///< the deadline passed with no complete frame
    kClosed,   ///< orderly EOF from the peer
    kCorrupt,  ///< the stream failed frame validation (see lastError)
    kError,    ///< I/O error (see lastError)
  };

  virtual ~FrameTransport() = default;

  /// Sends one complete frame (blocking until written or failed).
  /// Returns false on peer loss or I/O error; never raises SIGPIPE.
  virtual bool sendFrame(std::string_view payload) = 0;

  /// Waits up to `timeoutMs` (< 0 = forever) for the next frame.
  virtual RecvStatus recvFrame(std::string& payload, int timeoutMs) = 0;

  /// Human-readable diagnosis of the last kCorrupt/kError/send failure.
  [[nodiscard]] virtual std::string lastError() const = 0;

  /// Read-side fd for event-loop poll sets; -1 when not fd-backed.
  [[nodiscard]] virtual int pollFd() const noexcept { return -1; }

  /// Raw bytes received off the wire so far (pre-framing). Event loops
  /// watch this to distinguish a quiet peer from a stalled one.
  [[nodiscard]] virtual std::uint64_t bytesReceived() const noexcept {
    return 0;
  }

  /// Bytes buffered mid-frame awaiting completion — nonzero means the
  /// peer started a frame it has not finished (the slowloris signature).
  [[nodiscard]] virtual std::size_t partialBytes() const noexcept {
    return 0;
  }
};

/// Builds the framed transport for a freshly accepted or connected
/// socket fd (the factory takes ownership of the fd). `connectionId` is
/// a stable per-connection ordinal so seeded fault schedules decorrelate
/// across connections while each stays reproducible. A null factory
/// means makeSocketTransport — the default, chaos-free path.
using TransportFactory = std::function<std::unique_ptr<FrameTransport>(
    int fd, std::uint64_t connectionId)>;

/// FrameTransport over file descriptors — the pipe and socket
/// implementations differ only in construction (a pipe has distinct
/// read/write fds, a socket one duplex fd) and in SIGPIPE suppression.
class FdFrameTransport final : public FrameTransport {
 public:
  /// Takes ownership of the fds; closes them on destruction. Pass the
  /// same fd twice for a duplex socket. `isSocket` selects
  /// send(MSG_NOSIGNAL) over write().
  FdFrameTransport(int readFd, int writeFd, bool isSocket);
  ~FdFrameTransport() override;

  FdFrameTransport(const FdFrameTransport&) = delete;
  FdFrameTransport& operator=(const FdFrameTransport&) = delete;

  bool sendFrame(std::string_view payload) override;
  RecvStatus recvFrame(std::string& payload, int timeoutMs) override;
  [[nodiscard]] std::string lastError() const override { return lastError_; }
  [[nodiscard]] int pollFd() const noexcept override { return readFd_; }
  [[nodiscard]] std::uint64_t bytesReceived() const noexcept override {
    return rxBytes_;
  }
  [[nodiscard]] std::size_t partialBytes() const noexcept override {
    return reassembler_.buffered();
  }

 private:
  int readFd_;
  int writeFd_;
  bool isSocket_;
  FrameReassembler reassembler_;
  std::string lastError_;
  std::uint64_t rxBytes_ = 0;
};

/// Writes all of `bytes` to `fd`, surviving the hazards of signal-heavy
/// processes: EINTR restarts, short writes continue from the partial
/// count, and EAGAIN/EWOULDBLOCK (non-blocking fds, full socket buffers)
/// waits on POLLOUT up to `unwritableTimeoutMs` per stall. Sockets send
/// with MSG_NOSIGNAL so a vanished peer surfaces as false, never SIGPIPE.
/// Shared by FdFrameTransport, the distributed coordinator, and the
/// advisor server — one hardened write loop instead of three.
[[nodiscard]] bool sendAllBytes(int fd, std::string_view bytes, bool isSocket,
                                int unwritableTimeoutMs = 5'000);

/// Pipe-based transport (the isolation supervisor's shape).
[[nodiscard]] std::unique_ptr<FrameTransport> makePipeTransport(int readFd,
                                                                int writeFd);
/// Socket-based transport (one duplex fd).
[[nodiscard]] std::unique_ptr<FrameTransport> makeSocketTransport(int fd);

// TCP plumbing shared by the coordinator (listen/accept) and worker
// (connect). Errors come back as strings — these are setup paths where
// the caller logs and retries or gives up, not hot paths.

/// Bound, listening TCP socket on host:port (port 0 = ephemeral).
/// Returns the fd; *boundPort receives the actual port.
[[nodiscard]] Expected<int, std::string> listenTcp(const std::string& host,
                                                   int port, int* boundPort);

/// Connects to host:port with a timeout. Returns the connected fd.
[[nodiscard]] Expected<int, std::string> connectTcp(const std::string& host,
                                                    int port, int timeoutMs);

}  // namespace occm::exec
