#pragma once

// exec: a small fixed-size thread pool with a bounded task queue — the
// concurrency substrate for running independent simulations (one sweep
// point each) in parallel.
//
// Design constraints, in order:
//  - Determinism lives in the caller, not here. The pool guarantees only
//    that every submitted task runs exactly once on some worker; callers
//    that need reproducible output must make tasks independent (no shared
//    mutable state) and merge results in a fixed order (see
//    analysis::runSweep).
//  - Exceptions never kill a worker: each task runs inside a
//    std::packaged_task, so whatever it throws is captured and rethrown
//    from the submitter's future.
//  - The queue is bounded. submit() blocks when the queue is full
//    (backpressure towards producers), trySubmit() refuses instead; both
//    keep memory proportional to workers + capacity, not to the number of
//    tasks a producer can dream up.
//  - Cancellation is cooperative and cannot deadlock shutdown. cancel()
//    discards every queued-but-unstarted task (their futures report
//    broken_promise), wakes every submitter blocked on backpressure (they
//    throw a typed ContractViolation instead of queueing), and lets
//    in-flight tasks finish. cancel() returns only after every blocked
//    submit() has left the queue's wait, so the well-ordered sequence
//    cancel() -> ~ThreadPool() can never join workers while a submitter
//    still touches pool state.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace occm::exec {

/// Resolves a requested pool size: positive values pass through; zero or
/// negative fall back to the OCCM_SWEEP_WORKERS environment variable
/// (when it parses as a positive integer) and then to
/// std::thread::hardware_concurrency(), never below 1.
[[nodiscard]] int resolveWorkerCount(int requested);

struct ThreadPoolConfig {
  /// Worker threads; <= 0 resolves via resolveWorkerCount.
  int workers = 0;
  /// Bounded queue capacity (tasks waiting, excluding ones already
  /// running); 0 means 2x the worker count.
  std::size_t queueCapacity = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolConfig config = {});
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] std::size_t queueCapacity() const noexcept {
    return capacity_;
  }

  /// Submits a task, blocking while the queue is at capacity. The future
  /// becomes ready when the task finishes and rethrows anything the task
  /// threw. Throws ContractViolation if the pool is shutting down or was
  /// cancelled (including while blocked on backpressure).
  std::future<void> submit(std::function<void()> task);

  /// Non-blocking submit: returns false — leaving the task unqueued —
  /// when the queue is at capacity or the pool is shutting down. On
  /// success, stores the task's future into *future when it is non-null.
  [[nodiscard]] bool trySubmit(std::function<void()> task,
                               std::future<void>* future = nullptr);

  /// Cooperative cancellation: discards every queued task (their futures
  /// report std::future_error/broken_promise), wakes submitters blocked
  /// on backpressure (they throw), and lets tasks already running finish.
  /// Blocks until no submit() is inside the queue wait, so destroying the
  /// pool right after cancel() is race-free. Idempotent; thread-safe.
  void cancel();

  /// True once cancel() has been called.
  [[nodiscard]] bool cancelled() const;

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queued() const;

 private:
  void workerLoop();

  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::condition_variable submittersIdle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t capacity_ = 0;
  std::size_t blockedSubmitters_ = 0;
  bool stopping_ = false;
  bool cancelled_ = false;
};

}  // namespace occm::exec
