#pragma once

// exec: a small fixed-size thread pool with a bounded task queue — the
// concurrency substrate for running independent simulations (one sweep
// point each) in parallel.
//
// Design constraints, in order:
//  - Determinism lives in the caller, not here. The pool guarantees only
//    that every submitted task runs exactly once on some worker; callers
//    that need reproducible output must make tasks independent (no shared
//    mutable state) and merge results in a fixed order (see
//    analysis::runSweep).
//  - Exceptions never kill a worker: each task runs inside a
//    std::packaged_task, so whatever it throws is captured and rethrown
//    from the submitter's future.
//  - The queue is bounded. submit() blocks when the queue is full
//    (backpressure towards producers), trySubmit() refuses instead; both
//    keep memory proportional to workers + capacity, not to the number of
//    tasks a producer can dream up.
//  - Cancellation is cooperative and cannot deadlock shutdown. cancel()
//    discards every queued-but-unstarted task (their futures report
//    broken_promise), wakes every submitter blocked on backpressure (they
//    throw a typed ContractViolation instead of queueing), and lets
//    in-flight tasks finish. cancel() returns only after every blocked
//    submit() has left the queue's wait, so the well-ordered sequence
//    cancel() -> ~ThreadPool() can never join workers while a submitter
//    still touches pool state.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "obs/time_series.hpp"

namespace occm::exec {

/// Resolves a requested pool size: positive values pass through; zero or
/// negative fall back to the OCCM_SWEEP_WORKERS environment variable
/// (when it parses as a positive integer) and then to
/// std::thread::hardware_concurrency(), never below 1.
[[nodiscard]] int resolveWorkerCount(int requested);

struct ThreadPoolConfig {
  /// Worker threads; <= 0 resolves via resolveWorkerCount.
  int workers = 0;
  /// Bounded queue capacity (tasks waiting, excluding ones already
  /// running); 0 means 2x the worker count.
  std::size_t queueCapacity = 0;
  /// Bucket width (host ns) of the queue-occupancy time series in
  /// ThreadPoolStats. The series grows one bucket per window of pool
  /// lifetime that sees a queue transition, so the default 1 ms suits
  /// pools that live for seconds to minutes (a sweep), not daemons.
  std::uint64_t occupancyWindowNs = 1'000'000;
};

/// Telemetry of one worker thread (host nanoseconds). All zeros when the
/// observability layer is compiled out.
struct WorkerStats {
  std::uint64_t tasks = 0;        ///< tasks this worker ran
  std::uint64_t busyNs = 0;       ///< wall time spent inside task bodies
  std::uint64_t queueWaitNs = 0;  ///< submit-to-pickup latency, summed
};

/// End-of-life (or live) telemetry snapshot of a ThreadPool — the
/// parallel-efficiency picture: who did the work (per-worker task counts
/// and busy time), how long tasks sat queued, how often producers hit
/// backpressure, and how full the queue ran over time. Host-time only;
/// never feeds back into simulated results. Empty/zero with
/// OCCM_ENABLE_OBS=OFF (the pool then takes no clock reads at all).
struct ThreadPoolStats {
  std::vector<WorkerStats> workers;
  std::uint64_t submitted = 0;      ///< tasks accepted (submit + trySubmit)
  std::uint64_t submitBlockNs = 0;  ///< total backpressure wait in submit()
  std::uint64_t maxQueueDepth = 0;  ///< peak tasks waiting in the queue
  /// Queue depth over host time since pool construction (gauge, sampled
  /// at every enqueue/dequeue; 1 "cycle" = 1 ns).
  obs::TimeSeries queueOccupancy{1, obs::MetricKind::kGauge};

  /// Sum of tasks over workers (== tasks completed + tasks running).
  [[nodiscard]] std::uint64_t totalTasks() const noexcept {
    std::uint64_t total = 0;
    for (const WorkerStats& w : workers) {
      total += w.tasks;
    }
    return total;
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolConfig config = {});
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] std::size_t queueCapacity() const noexcept {
    return capacity_;
  }

  /// Submits a task, blocking while the queue is at capacity. The future
  /// becomes ready when the task finishes and rethrows anything the task
  /// threw. Throws ContractViolation if the pool is shutting down or was
  /// cancelled (including while blocked on backpressure).
  std::future<void> submit(std::function<void()> task);

  /// Non-blocking submit: returns false — leaving the task unqueued —
  /// when the queue is at capacity or the pool is shutting down. On
  /// success, stores the task's future into *future when it is non-null.
  [[nodiscard]] bool trySubmit(std::function<void()> task,
                               std::future<void>* future = nullptr);

  /// Cooperative cancellation: discards every queued task (their futures
  /// report std::future_error/broken_promise), wakes submitters blocked
  /// on backpressure (they throw), and lets tasks already running finish.
  /// Blocks until no submit() is inside the queue wait, so destroying the
  /// pool right after cancel() is race-free. Idempotent; thread-safe.
  void cancel();

  /// True once cancel() has been called.
  [[nodiscard]] bool cancelled() const;

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queued() const;

  /// Telemetry snapshot (see ThreadPoolStats). Safe to call while the
  /// pool is running; a worker mid-task shows its current task counted
  /// with the busy time accrued so far excluded.
  [[nodiscard]] ThreadPoolStats stats() const;

 private:
  /// One queued task plus the host time it was accepted (0 when the
  /// observability layer is compiled out).
  struct Entry {
    std::packaged_task<void()> task;
    std::uint64_t enqueueNs = 0;
  };

  /// Per-worker telemetry slot. Relaxed atomics: each worker writes only
  /// its own slot; stats() reads concurrently and tolerates staleness.
  /// Cache-line aligned so two workers bumping adjacent slots never
  /// write-share a line (DESIGN.md §14; pinned by the ThreadPoolContention
  /// stress suite under tsan).
  struct alignas(kCacheLineBytes) WorkerSlot {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busyNs{0};
    std::atomic<std::uint64_t> queueWaitNs{0};
  };
  static_assert(sizeof(WorkerSlot) >= kCacheLineBytes,
                "slot must fill its cache line");

  void workerLoop(std::size_t slot);
  /// Records a queue-depth sample; callers hold mutex_.
  void recordOccupancyLocked();

  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::condition_variable submittersIdle_;
  std::deque<Entry> queue_;
  std::vector<std::thread> workers_;
  std::size_t capacity_ = 0;
  std::size_t blockedSubmitters_ = 0;
  bool stopping_ = false;
  bool cancelled_ = false;

  // Telemetry (all behind obs::kCompiledIn at the recording sites).
  std::uint64_t epochNs_ = 0;  ///< pool construction time (host ns)
  std::deque<WorkerSlot> slots_;  ///< deque: stable refs, immovable atomics
  std::uint64_t submitted_ = 0;       ///< guarded by mutex_
  std::uint64_t submitBlockNs_ = 0;   ///< guarded by mutex_
  std::uint64_t maxQueueDepth_ = 0;   ///< guarded by mutex_
  obs::TimeSeries queueOccupancy_;    ///< guarded by mutex_
};

}  // namespace occm::exec
