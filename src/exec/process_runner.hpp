#pragma once

// Process isolation for one unit of work: fork a child, run the work
// function there under optional resource limits, stream the result back
// over a length-prefixed pipe frame (exec/ipc), and decode whatever
// happened — a clean result, a caught exception, a cooperative abort, or
// a hard death (signal, rlimit, nonzero exit) — into a structured
// ChildOutcome the caller can record without ever crashing itself.
//
// Contract highlights (DESIGN.md §11):
//  - The child runs the work exactly as the calling process would:
//    identical inputs produce a bit-identical RunProfile, shipped over a
//    fixed-width binary frame — isolation changes failure behavior, never
//    results.
//  - The supervisor never blocks on a dead pipe: it polls both the result
//    and stderr pipes, keeps a bounded stderr tail, and reaps the child
//    with waitpid after both hit EOF.
//  - A cancellation token is parent-side: tokens do not propagate across
//    fork, so the supervisor polls it and SIGKILLs the child (reported as
//    kKilled, for the caller's timeout/cancel classification).
//  - RLIMIT_AS failures are deterministic: the child installs a
//    new-handler that writes fault::kOutOfMemoryMarker to stderr and
//    aborts, so the parent can report "address-space" instead of a bare
//    SIGABRT.

#include <cstdint>
#include <functional>
#include <string>

#include "common/cancellation.hpp"
#include "perf/run_profile.hpp"

namespace occm::exec {

/// Limits applied inside the forked child before the work runs; 0 means
/// "inherit" (no limit set).
struct ResourceLimits {
  std::uint64_t memoryBytes = 0;  ///< RLIMIT_AS address-space budget
  std::uint64_t cpuSeconds = 0;   ///< RLIMIT_CPU (SIGXCPU on overrun)
};

struct ProcessRunnerConfig {
  ResourceLimits limits;
  /// Bytes of the child's stderr kept (the *tail* — the last bytes
  /// written are the ones that explain a death).
  std::size_t stderrTailBytes = 4096;
  /// Parent-side kill switch: when the token fires, the supervisor
  /// SIGKILLs the child and reports kKilled.
  CancellationToken cancel;
};

/// How the isolated attempt ended.
enum class ChildStatus : std::uint8_t {
  kOk,         ///< clean exit, valid frame, profile decoded
  kException,  ///< the work threw; `error` is what()
  kAborted,    ///< the work unwound via RunAborted (budget/cancel)
  kKilled,     ///< the supervisor killed the child (cancel token fired)
  kCrash,      ///< the child died: signal, rlimit, or protocol violation
};

[[nodiscard]] constexpr const char* toString(ChildStatus status) noexcept {
  switch (status) {
    case ChildStatus::kOk: return "ok";
    case ChildStatus::kException: return "exception";
    case ChildStatus::kAborted: return "aborted";
    case ChildStatus::kKilled: return "killed";
    case ChildStatus::kCrash: return "crash";
  }
  return "unknown";
}

struct ChildOutcome {
  ChildStatus status = ChildStatus::kCrash;
  perf::RunProfile profile;  ///< kOk only
  /// Human-readable description for kException / kAborted / kCrash.
  std::string error;
  /// kAborted only: reason and cycle for an equivalent RunAborted.
  AbortReason abortReason = AbortReason::kCancelled;
  Cycles abortCycle = 0;
  /// kCrash / kKilled: signal that terminated the child (0 = exited).
  int signal = 0;
  /// kCrash: exit status when the child exited instead of dying on a
  /// signal (sanitizer deaths land here); -1 otherwise.
  int exitCode = -1;
  /// Which resource limit explains the death: "address-space" (RLIMIT_AS
  /// via the OOM marker), "cpu" (SIGXCPU), or empty.
  std::string rlimit;
  /// Bounded tail of the child's stderr, sanitized to printable ASCII.
  std::string stderrTail;
};

/// True when this platform supports fork-based isolation (POSIX).
[[nodiscard]] bool processIsolationSupported() noexcept;

/// Runs `work` in a forked child under `config` and returns the decoded
/// outcome. Child-side failures of every shape come back as data; the
/// only throws are parent-side setup contract violations (pipe/fork
/// failure, unsupported platform).
///
/// The caller must treat `work` as running in a separate address space:
/// side effects on parent memory do not happen, and the observability
/// trace (RunProfile::trace) is not shipped back.
[[nodiscard]] ChildOutcome runInChild(
    const std::function<perf::RunProfile()>& work,
    const ProcessRunnerConfig& config = {});

}  // namespace occm::exec
