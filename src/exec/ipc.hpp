#pragma once

// Pipe IPC between an isolated sweep child and its supervisor: one
// length-prefixed, CRC-checked binary frame carrying the attempt's result
// (the full perf::RunProfile on success, or the typed failure the child
// caught). The encoding is fixed-width little-endian, so a frame produced
// by the forked child is decoded bit-exactly by the parent — the
// foundation of the isolation mode's "successful runs are bit-identical
// to in-process runs" guarantee (DESIGN.md §11).
//
// The decoder is hardened against arbitrary bytes: every read is
// bounds-checked, counts and string lengths are capped, and any deviation
// produces a typed IpcError naming the byte offset — never a throw, never
// UB. fuzz/fuzz_ipc_frame.cpp drives it with libFuzzer.
//
// Not serialized: RunProfile::trace (the observability payload). A child
// ships counters, per-core sets, controller stats, miss windows and fault
// epochs; traces stay a single-process feature (documented on
// IsolationConfig).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "perf/run_profile.hpp"

namespace occm::exec {

/// Wire-frame geometry, shared with the streaming reassembler in
/// exec/frame_transport (sockets deliver frames in arbitrary chunks, so
/// the header must be parseable before the payload arrives).
inline constexpr char kFrameMagic[4] = {'O', 'C', 'F', '1'};
inline constexpr std::size_t kFrameHeaderSize = 8;   ///< magic + u32 length
inline constexpr std::size_t kFrameTrailerSize = 4;  ///< u32 payload CRC
inline constexpr std::size_t kFrameOverhead =
    kFrameHeaderSize + kFrameTrailerSize;
/// Max payload a peer may declare. Anything larger is rejected before a
/// single payload byte is buffered — a corrupt or hostile length field
/// must never drive a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1U << 24;

/// Typed diagnosis of bytes that are not a valid frame or message.
struct IpcError {
  std::size_t byteOffset = 0;  ///< offset of the first deviation
  std::string detail;
  bool truncated = false;  ///< the bytes end mid-structure

  /// "corrupt ipc frame (truncated) at byte 12: ..."
  [[nodiscard]] std::string message() const;
};

/// What one isolated attempt reports back over the pipe.
struct ChildMessage {
  enum class Kind : std::uint8_t {
    kProfile = 1,    ///< the run completed; `profile` is the result
    kException = 2,  ///< the run threw; `error` is what()
    kAborted = 3,    ///< RunAborted unwound the run (budget/cancel)
  };

  Kind kind = Kind::kException;
  perf::RunProfile profile;  ///< kProfile only
  std::string error;         ///< kException / kAborted
  /// kAborted only: the AbortReason's numeric value and the cycle it
  /// fired at, so the parent can rethrow an equivalent RunAborted.
  std::uint8_t abortReason = 0;
  std::uint64_t abortCycle = 0;
};

/// Serializes a message payload (no frame header; see encodeFrame).
[[nodiscard]] std::string encodeChildMessage(const ChildMessage& message);

/// Decodes what encodeChildMessage produced. Bounds-checked on every
/// field; arbitrary bytes yield a typed error, never a crash.
[[nodiscard]] Expected<ChildMessage, IpcError> decodeChildMessage(
    std::string_view payload);

/// Wraps a payload in the wire frame: magic, u32 length, payload bytes,
/// u32 CRC-32 of the payload.
[[nodiscard]] std::string encodeFrame(std::string_view payload);

/// Validates and strips the frame around exactly one payload (the
/// supervisor reads the pipe to EOF first, so trailing bytes are an
/// error). Checks magic, length and CRC.
[[nodiscard]] Expected<std::string, IpcError> decodeFrame(
    std::string_view bytes);

}  // namespace occm::exec
