#include "sched/affinity.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace occm::sched {

int Pinning::maxThreadsPerCore() const {
  std::size_t most = 0;
  for (const auto& list : threadsOn) {
    most = std::max(most, list.size());
  }
  return static_cast<int>(most);
}

Pinning pinRoundRobin(const topology::TopologyMap& topo, int threads,
                      int activeCores) {
  OCCM_REQUIRE_MSG(threads >= 1, "need at least one thread");
  OCCM_REQUIRE_MSG(activeCores >= 1 && activeCores <= topo.spec().logicalCores(),
                   "active cores out of range");
  const std::vector<CoreId> active = topo.activeCores(activeCores);
  Pinning pinning;
  pinning.pinnedCore.resize(static_cast<std::size_t>(threads));
  pinning.threadsOn.resize(
      static_cast<std::size_t>(topo.spec().logicalCores()));
  for (ThreadId t = 0; t < threads; ++t) {
    const CoreId core = active[static_cast<std::size_t>(t) % active.size()];
    pinning.pinnedCore[static_cast<std::size_t>(t)] = core;
    pinning.threadsOn[static_cast<std::size_t>(core)].push_back(t);
  }
  return pinning;
}

std::vector<std::string> describePinning(const Pinning& pinning,
                                         const topology::TopologyMap& topo) {
  std::vector<std::string> labels;
  labels.reserve(pinning.threadsOn.size());
  for (std::size_t c = 0; c < pinning.threadsOn.size(); ++c) {
    const auto core = static_cast<CoreId>(c);
    std::string label = "core " + std::to_string(c);
    if (pinning.threadsOn[c].empty()) {
      label += " (idle)";
    } else {
      label += " (socket " +
               std::to_string(topo.location(core).socket) + ", node " +
               std::to_string(topo.homeNode(core)) + ") threads [";
      for (std::size_t i = 0; i < pinning.threadsOn[c].size(); ++i) {
        if (i > 0) {
          label += ',';
        }
        label += std::to_string(pinning.threadsOn[c][i]);
      }
      label += ']';
    }
    labels.push_back(std::move(label));
  }
  return labels;
}

bool RunQueue::rotate() {
  OCCM_REQUIRE_MSG(live_ > 0, "run queue is empty");
  if (live_ == 1) {
    return false;
  }
  const std::size_t previous = current_;
  do {
    current_ = (current_ + 1) % threads_.size();
  } while (finished_[current_]);
  return current_ != previous;
}

void RunQueue::finish(ThreadId thread) {
  const auto it = std::find(threads_.begin(), threads_.end(), thread);
  OCCM_REQUIRE_MSG(it != threads_.end(), "thread not on this queue");
  const auto idx = static_cast<std::size_t>(it - threads_.begin());
  OCCM_REQUIRE_MSG(!finished_[idx], "thread already finished");
  finished_[idx] = true;
  --live_;
  if (live_ > 0 && idx == current_) {
    do {
      current_ = (current_ + 1) % threads_.size();
    } while (finished_[current_]);
  }
}

}  // namespace occm::sched
