#pragma once

// Thread-to-core pinning, reproducing the paper's protocol: the program is
// partitioned into a fixed number of threads (= machine logical cores);
// the number of *active* cores n is varied; threads are bound with
// sched_setaffinity to the first n cores of the fill-processor-first
// order, round-robin, so with n < threads each core time-shares
// ceil(threads/n) threads (oversubscription).

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "topology/topology_map.hpp"

namespace occm::sched {

struct SchedConfig {
  /// Time-slice length for oversubscribed cores.
  Cycles quantum = 250'000;
  /// Direct cost of a context switch (register/TLB work). The indirect
  /// cost — cache pollution between threads sharing a core, the paper's
  /// "negative caching effects" — emerges from the cache simulation.
  Cycles contextSwitchCost = 2'000;
};

/// Pinning of each thread to a logical core.
struct Pinning {
  /// pinnedCore[t] = logical core running thread t.
  std::vector<CoreId> pinnedCore;
  /// threadsOn[c] = threads pinned to logical core c (machine-wide index),
  /// in their round-robin arrival order; empty for inactive cores.
  std::vector<std::vector<ThreadId>> threadsOn;

  [[nodiscard]] int maxThreadsPerCore() const;
};

/// Pins `threads` threads round-robin over the first `activeCores` entries
/// of the machine's fill-processor-first order.
[[nodiscard]] Pinning pinRoundRobin(const topology::TopologyMap& topo,
                                    int threads, int activeCores);

/// Human-readable label for each logical core under a pinning, e.g.
/// "core 3 (socket 1, node 1) threads [3,7]"; idle cores get
/// "core 5 (idle)". Used to name trace timeline tracks.
[[nodiscard]] std::vector<std::string> describePinning(
    const Pinning& pinning, const topology::TopologyMap& topo);

/// Round-robin run queue of the threads pinned to one core.
class RunQueue {
 public:
  explicit RunQueue(std::vector<ThreadId> threads)
      : threads_(std::move(threads)) {}

  [[nodiscard]] bool empty() const noexcept { return live_ == 0 || threads_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Initializes bookkeeping; call once before the first pick.
  void start() noexcept {
    live_ = threads_.size();
    finished_.assign(threads_.size(), false);
    current_ = 0;
  }

  /// Currently scheduled thread; queue must be non-empty. Inline: the
  /// simulator asks once per operation.
  [[nodiscard]] ThreadId current() const {
    OCCM_REQUIRE_MSG(live_ > 0, "run queue is empty");
    OCCM_ASSERT(!finished_[current_]);
    return threads_[current_];
  }

  /// Advances to the next unfinished thread (end of quantum). Returns
  /// whether the running thread actually changed.
  bool rotate();

  /// Marks a thread finished and advances if it was current.
  void finish(ThreadId thread);

 private:
  std::vector<ThreadId> threads_;
  std::vector<bool> finished_;
  std::size_t current_ = 0;
  std::size_t live_ = 0;
};

}  // namespace occm::sched
