#include "obs/trace_sink.hpp"

#include <utility>

namespace occm::obs {

TraceSink::TraceSink(std::size_t capacity, OverflowPolicy policy)
    : events_(capacity), policy_(policy) {}

void TraceSink::push(TraceEvent event) {
  ++recorded_;
  if (events_.full()) {
    ++dropped_;
    if (policy_ == OverflowPolicy::kDropNewest) {
      return;
    }
  }
  events_.push(std::move(event));
}

void TraceSink::span(std::string name, std::string category,
                     std::int32_t track, Cycles start, Cycles duration,
                     std::string argName, double arg) {
  push(TraceEvent{std::move(name), std::move(category), track, start,
                  duration, TracePhase::kSpan, std::move(argName), arg});
}

void TraceSink::instant(std::string name, std::string category,
                        std::int32_t track, Cycles time, std::string argName,
                        double arg) {
  push(TraceEvent{std::move(name), std::move(category), track, time, 0,
                  TracePhase::kInstant, std::move(argName), arg});
}

void TraceSink::setTrackName(std::int32_t track, std::string name) {
  trackNames_[track] = std::move(name);
}

}  // namespace occm::obs
