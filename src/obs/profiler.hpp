#pragma once

// Self-profiling of the harness itself, in host time — where the
// simulator's *own* cycles go, as opposed to the simulated machine's
// (which MetricRegistry/TraceSink cover in simulated time).
//
// Three primitives:
//  - Phase + ScopedPhase: RAII scoped timers accumulating wall-clock and
//    thread-CPU nanoseconds per named phase (calls, total, max). Phases
//    nest freely; timing is inclusive, so a child phase's wall time is
//    also inside its parent's.
//  - Counter: a hot-path event counter (events popped, controller ticks,
//    queue ops). Plain uint64 with unsigned wraparound semantics,
//    relaxed-atomic so concurrent sweep tasks can share one counter.
//  - Profiler: the registry. phase()/counter() return stable references
//    (register once, record with no name lookup), snapshots are
//    consistent-enough reads of the atomics, and the whole state exports
//    through the *existing* sinks: exportTo(MetricRegistry&) for metric
//    consumers and chromeTrace() for a Perfetto-loadable timeline of the
//    recorded phase spans (host nanoseconds on the trace clock).
//
// Zero-cost contract: instrument hot paths only through the
// OCCM_PROF_SCOPE / OCCM_PROF_COUNT macros. With OCCM_ENABLE_OBS=OFF
// (OCCM_OBS_ENABLED=0) they expand to unevaluated sizeof probes — no
// clock reads, no increments, no code — while still "using" their
// operands so -Wunused stays quiet. The classes themselves stay defined
// in every build (cold-path registration and tests keep working); only
// the recording sites vanish.
//
// Determinism: the profiler observes the run, never steers it. Nothing
// in the simulator reads a profiler value back, so a profiled run's
// output is bit-identical to an unprofiled one (pinned by
// Profiler.FingerprintUnchangedByProfiling and the bench harness).

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/run_trace.hpp"

namespace occm::obs {

/// Wall-clock nanoseconds since an arbitrary steady epoch.
[[nodiscard]] std::uint64_t steadyNowNs() noexcept;

/// CPU time consumed by the calling thread, in nanoseconds (0 where the
/// platform offers no per-thread clock).
[[nodiscard]] std::uint64_t threadCpuNowNs() noexcept;

/// Accumulated statistics of one named phase.
struct PhaseSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t wallNs = 0;     ///< total wall time inside the phase
  std::uint64_t cpuNs = 0;      ///< total thread-CPU time inside the phase
  std::uint64_t maxWallNs = 0;  ///< longest single scope
};

/// Value of one named hot-path counter.
struct CounterSnapshot {
  std::string name;
  std::string unit;
  std::uint64_t value = 0;
};

/// One registered phase. Accumulation is relaxed-atomic: concurrent
/// scopes (e.g. parallel sweep tasks timing "sweep.task") never lose
/// increments, and a snapshot taken mid-scope is merely slightly stale.
/// Cache-line aligned: two threads hammering *different* phases must not
/// write-share a line just because the registry packed the objects
/// adjacently (contention on the *same* phase is intrinsic).
class alignas(64) Phase {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Folds one completed scope into the totals.
  void record(std::uint64_t wallNs, std::uint64_t cpuNs) noexcept {
    calls_.fetch_add(1, std::memory_order_relaxed);
    wallNs_.fetch_add(wallNs, std::memory_order_relaxed);
    cpuNs_.fetch_add(cpuNs, std::memory_order_relaxed);
    std::uint64_t seen = maxWallNs_.load(std::memory_order_relaxed);
    while (wallNs > seen && !maxWallNs_.compare_exchange_weak(
                                seen, wallNs, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] PhaseSnapshot snapshot() const {
    return {name_, calls_.load(std::memory_order_relaxed),
            wallNs_.load(std::memory_order_relaxed),
            cpuNs_.load(std::memory_order_relaxed),
            maxWallNs_.load(std::memory_order_relaxed)};
  }

  /// Construct through Profiler::phase(); public only because container
  /// emplacement cannot borrow the profiler's friendship.
  explicit Phase(std::string name) : name_(std::move(name)) {}

 private:
  friend class Profiler;
  std::string name_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> wallNs_{0};
  std::atomic<std::uint64_t> cpuNs_{0};
  std::atomic<std::uint64_t> maxWallNs_{0};
};

/// One registered hot-path counter. add() wraps modulo 2^64 — the
/// well-defined unsigned overflow of the underlying uint64 — rather than
/// saturating or trapping (pinned by Profiler.CounterOverflowWraps).
/// Cache-line aligned for the same reason as Phase: counters bumped from
/// different sweep workers must not false-share.
class alignas(64) Counter {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

  void add(std::uint64_t amount = 1) noexcept {
    value_.fetch_add(amount, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] CounterSnapshot snapshot() const {
    return {name_, unit_, value()};
  }

  /// Construct through Profiler::counter(); see Phase.
  Counter(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

 private:
  friend class Profiler;
  std::string name_;
  std::string unit_;
  std::atomic<std::uint64_t> value_{0};
};

struct ProfilerConfig {
  /// Record every completed scope as a span into an internal TraceSink
  /// (one track per recording thread). Off by default: span recording
  /// takes a mutex per scope end, which is fine for coarse phases and
  /// wrong for per-event ones.
  bool spans = false;
  std::size_t spanCapacity = 1U << 14U;
  /// Window width (host ns) of the MetricRegistry built by exports.
  std::uint64_t exportWindowNs = 1'000'000;
};

class Profiler {
 public:
  explicit Profiler(ProfilerConfig config = {});

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Registers (or re-opens) a phase. The reference stays valid for the
  /// profiler's lifetime; registration is thread-safe and cold-path.
  [[nodiscard]] Phase& phase(std::string_view name);
  /// Registers (or re-opens) a counter. Re-opening keeps the first unit.
  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::string_view unit = "events");

  /// Host-ns since the profiler was constructed (the span timeline zero).
  [[nodiscard]] std::uint64_t elapsedNs() const noexcept;

  /// Stable-order snapshots (registration order).
  [[nodiscard]] std::vector<PhaseSnapshot> phases() const;
  [[nodiscard]] std::vector<CounterSnapshot> counters() const;

  /// Zeroes every phase and counter (registrations survive).
  void reset();

  /// Records the current totals into `registry` as gauges at time
  /// `atCycle`: "prof.phase.<name>.{wall_ns,cpu_ns,calls,max_wall_ns}"
  /// and "prof.counter.<name>" — the bridge into every consumer that
  /// already reads a MetricRegistry (metricsToCsv, Chrome counter
  /// tracks).
  void exportTo(MetricRegistry& registry, Cycles atCycle) const;

  /// Renders the profiler as a Chrome trace_event JSON document through
  /// the existing exporter: recorded phase spans on per-thread tracks
  /// (host ns; 1 "cycle" = 1 ns) plus counter/phase totals as counter
  /// tracks.
  [[nodiscard]] std::string chromeTrace() const;

  [[nodiscard]] bool spansEnabled() const noexcept { return config_.spans; }

  /// Called by ScopedPhase on destruction; also the test seam for
  /// recording a span without a live clock.
  void recordSpan(const Phase& phase, std::uint64_t startNs,
                  std::uint64_t durationNs);

 private:
  ProfilerConfig config_;
  std::uint64_t epochNs_;

  mutable std::mutex registerMutex_;
  std::deque<Phase> phases_;      ///< deque: stable references
  std::deque<Counter> counters_;  ///< deque: stable references
  std::unordered_map<std::string, std::size_t> phaseIndex_;
  std::unordered_map<std::string, std::size_t> counterIndex_;

  mutable std::mutex spanMutex_;
  TraceSink spans_;
  std::unordered_map<std::thread::id, std::int32_t> trackByThread_;
};

/// RAII scope: captures wall + thread-CPU time on entry, folds the delta
/// into the phase (and optionally a span) on exit.
class ScopedPhase {
 public:
  ScopedPhase(Profiler& profiler, Phase& phase) noexcept
      : profiler_(&profiler), phase_(&phase),
        startWallNs_(profiler.elapsedNs()), startCpuNs_(threadCpuNowNs()) {}

  ~ScopedPhase() {
    const std::uint64_t wallNs = profiler_->elapsedNs() - startWallNs_;
    const std::uint64_t cpuNs = threadCpuNowNs() - startCpuNs_;
    phase_->record(wallNs, cpuNs);
    if (profiler_->spansEnabled()) {
      profiler_->recordSpan(*phase_, startWallNs_, wallNs);
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* profiler_;
  Phase* phase_;
  std::uint64_t startWallNs_;
  std::uint64_t startCpuNs_;
};

}  // namespace occm::obs

// Instrumentation macros — the only way hot paths should touch the
// profiler. Compiled out entirely (unevaluated operands, no code) when
// the observability layer is off.
#define OCCM_PROF_CONCAT_INNER(a, b) a##b
#define OCCM_PROF_CONCAT(a, b) OCCM_PROF_CONCAT_INNER(a, b)

#if OCCM_OBS_ENABLED
/// Times the enclosing scope into `phaseRef` (an obs::Phase&) of
/// `profilerRef` (an obs::Profiler&).
#define OCCM_PROF_SCOPE(profilerRef, phaseRef)                       \
  const ::occm::obs::ScopedPhase OCCM_PROF_CONCAT(occmProfScope_,    \
                                                  __LINE__) {        \
    (profilerRef), (phaseRef)                                        \
  }
/// Adds `amount` to `counterRef` (an obs::Counter&).
#define OCCM_PROF_COUNT(counterRef, amount) (counterRef).add(amount)
#else
// Obs-off: expand to unevaluated sizeof probes — zero code, zero clock
// reads — that still reference the operands so they never trip -Wunused.
// `amount` must therefore be side-effect free (it is discarded here).
#define OCCM_PROF_SCOPE(profilerRef, phaseRef)            \
  static_cast<void>(sizeof(&(profilerRef)));              \
  static_cast<void>(sizeof(&(phaseRef)))
#define OCCM_PROF_COUNT(counterRef, amount)               \
  static_cast<void>(sizeof(&(counterRef)));               \
  static_cast<void>(sizeof((amount)))
#endif
