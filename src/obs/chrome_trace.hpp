#pragma once

// Chrome trace_event JSON exporter: serializes a RunTrace into the
// "JSON Object Format" understood by chrome://tracing and Perfetto
// (https://ui.perfetto.dev — drag the file in).
//
// Mapping:
//  - span events        -> "ph":"X" complete events (ts + dur)
//  - instant events     -> "ph":"i" thread-scoped instants
//  - metric time series -> "ph":"C" counter events, one per window
//  - track names        -> "ph":"M" thread_name metadata
// Timestamps are microseconds of simulated wall-clock (cycles / GHz).

#include <string>

#include "obs/run_trace.hpp"

namespace occm::obs {

/// Renders the whole trace (events + metric counter tracks).
[[nodiscard]] std::string toChromeTraceJson(const RunTrace& trace);

/// Escapes a string for embedding in a JSON string literal (no quotes).
[[nodiscard]] std::string jsonEscape(const std::string& text);

}  // namespace occm::obs
