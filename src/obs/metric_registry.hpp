#pragma once

// Named collection of TimeSeries sharing one window width — the metric
// side of a run's observability data. Instrumentation sites register a
// metric once (counter()/gauge() return a stable reference) and record
// into it on the hot path without any name lookup.

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.hpp"
#include "obs/time_series.hpp"

namespace occm::obs {

struct Metric {
  std::string name;  ///< dotted path, e.g. "mem.node0.requests"
  std::string unit;  ///< e.g. "cycles", "lines/window", "" (dimensionless)
  TimeSeries series;
};

class MetricRegistry {
 public:
  /// `windowCycles`: shared bucket width of every metric in the registry.
  explicit MetricRegistry(Cycles windowCycles);

  /// Registers (or re-opens) a per-window-sum metric. The reference stays
  /// valid for the registry's lifetime. Re-opening requires the same kind.
  TimeSeries& counter(std::string_view name, std::string_view unit = "");
  /// Registers (or re-opens) a per-window-mean metric.
  TimeSeries& gauge(std::string_view name, std::string_view unit = "");

  [[nodiscard]] const TimeSeries* find(std::string_view name) const;

  [[nodiscard]] const std::deque<Metric>& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] Cycles windowCycles() const noexcept { return window_; }

  /// Extends every series to cover [0, endTime) (trailing empty windows),
  /// so all metrics line up window-for-window in exports.
  void finalize(Cycles endTime);

 private:
  TimeSeries& open(std::string_view name, std::string_view unit,
                   MetricKind kind);

  Cycles window_;
  std::deque<Metric> metrics_;  ///< deque: stable references across growth
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace occm::obs
