#pragma once

// The observability payload of one simulated run: a metric registry of
// windowed time series plus a structured event trace, attached to
// perf::RunProfile when tracing is requested.
//
// Zero-cost when off: compile with OCCM_OBS_ENABLED=0 (CMake option
// OCCM_ENABLE_OBS=OFF) and every instrumentation site folds to a
// constant-false branch the optimizer deletes; with tracing compiled in
// but disabled at runtime (the default ObsConfig), the hot path pays one
// predictable null-pointer test per hook.
//
// Thread safety: a RunTrace is built inside MachineSim::run and written
// only by that run — metric registries and trace sinks are per-task
// sinks, never shared across concurrent simulations. Parallel sweeps
// therefore need no locking here: each task's trace rides back on its
// RunProfile and is "merged" simply by the deterministic result order.

#include <cstddef>
#include <memory>

#include "common/types.hpp"
#include "obs/metric_registry.hpp"
#include "obs/trace_sink.hpp"

#ifndef OCCM_OBS_ENABLED
#define OCCM_OBS_ENABLED 1
#endif

namespace occm::obs {

/// Compile-time switch; instrumentation guards with `if constexpr`.
inline constexpr bool kCompiledIn = OCCM_OBS_ENABLED != 0;

/// Per-run observability request (part of sim::SimConfig).
struct ObsConfig {
  /// Record windowed metrics (controller utilization/queueing, per-core
  /// work/stall split, machine-wide LLC-miss rate).
  bool metrics = false;
  /// Record structured trace events (controller service spans, core memory
  /// stalls, context switches, pinning).
  bool trace = false;
  /// Metric window width in simulated nanoseconds (paper's sampler: 5 us).
  double windowNs = 5000.0;
  /// Event-ring capacity and overflow policy (see TraceSink).
  std::size_t traceCapacity = 1 << 16;
  OverflowPolicy overflow = OverflowPolicy::kDropOldest;

  [[nodiscard]] bool enabled() const noexcept {
    return kCompiledIn && (metrics || trace);
  }
};

struct RunTrace {
  RunTrace(Cycles windowCycles, std::size_t traceCapacity,
           OverflowPolicy overflow, double ghz)
      : metrics(windowCycles), events(traceCapacity, overflow),
        clockGhz(ghz) {}

  MetricRegistry metrics;
  TraceSink events;
  /// Simulated clock, for converting cycles to wall-clock in exports.
  double clockGhz = 1.0;
};

using RunTracePtr = std::shared_ptr<RunTrace>;

}  // namespace occm::obs
