#include "obs/chrome_trace.hpp"

#include <cstdio>

namespace occm::obs {

namespace {

std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

/// Cycles -> trace microseconds at the run's simulated clock.
double toMicros(Cycles cycles, double ghz) {
  return static_cast<double>(cycles) / (ghz * 1000.0);
}

void appendCommon(std::string& out, const std::string& name,
                  const std::string& category, std::int32_t track,
                  double tsMicros) {
  out += "{\"name\":\"";
  out += jsonEscape(name);
  out += "\",\"cat\":\"";
  out += jsonEscape(category.empty() ? std::string("sim") : category);
  out += "\",\"pid\":0,\"tid\":";
  out += std::to_string(track);
  out += ",\"ts\":";
  out += num(tsMicros);
}

}  // namespace

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string toChromeTraceJson(const RunTrace& trace) {
  const double ghz = trace.clockGhz > 0.0 ? trace.clockGhz : 1.0;
  std::string out = "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
                    "\"clock_ghz\":" + num(ghz) +
                    ",\"dropped_events\":" +
                    std::to_string(trace.events.dropped()) +
                    "},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      out += ',';
    }
    first = false;
  };

  // Track-name metadata.
  for (const auto& [track, name] : trace.events.trackNames()) {
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"name\":\"";
    out += jsonEscape(name);
    out += "\"}}";
  }

  // Span / instant events.
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& ev = trace.events[i];
    sep();
    appendCommon(out, ev.name, ev.category, ev.track,
                 toMicros(ev.start, ghz));
    if (ev.phase == TracePhase::kSpan) {
      out += ",\"ph\":\"X\",\"dur\":";
      out += num(toMicros(ev.duration, ghz));
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    if (!ev.argName.empty()) {
      out += ",\"args\":{\"";
      out += jsonEscape(ev.argName);
      out += "\":";
      out += num(ev.arg);
      out += '}';
    }
    out += '}';
  }

  // Metric series as counter tracks.
  const Cycles window = trace.metrics.windowCycles();
  for (const Metric& metric : trace.metrics.metrics()) {
    const std::vector<double> values = metric.series.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      sep();
      out += "{\"name\":\"";
      out += jsonEscape(metric.name);
      out += "\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":0,\"ts\":";
      out += num(toMicros(static_cast<Cycles>(i) * window, ghz));
      out += ",\"args\":{\"value\":";
      out += num(values[i]);
      out += "}}";
    }
  }

  out += "]}";
  return out;
}

}  // namespace occm::obs
