#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>

#include "obs/chrome_trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define OCCM_HAS_THREAD_CPU_CLOCK 1
#else
#define OCCM_HAS_THREAD_CPU_CLOCK 0
#endif

namespace occm::obs {

std::uint64_t steadyNowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t threadCpuNowNs() noexcept {
#if OCCM_HAS_THREAD_CPU_CLOCK
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

Profiler::Profiler(ProfilerConfig config)
    : config_(config), epochNs_(steadyNowNs()),
      spans_(config.spanCapacity, OverflowPolicy::kDropOldest) {}

Phase& Profiler::phase(std::string_view name) {
  const std::lock_guard<std::mutex> lock(registerMutex_);
  std::string key(name);
  const auto it = phaseIndex_.find(key);
  if (it != phaseIndex_.end()) {
    return phases_[it->second];
  }
  phaseIndex_.emplace(key, phases_.size());
  phases_.emplace_back(std::move(key));
  return phases_.back();
}

Counter& Profiler::counter(std::string_view name, std::string_view unit) {
  const std::lock_guard<std::mutex> lock(registerMutex_);
  std::string key(name);
  const auto it = counterIndex_.find(key);
  if (it != counterIndex_.end()) {
    return counters_[it->second];
  }
  counterIndex_.emplace(key, counters_.size());
  counters_.emplace_back(std::move(key), std::string(unit));
  return counters_.back();
}

std::uint64_t Profiler::elapsedNs() const noexcept {
  return steadyNowNs() - epochNs_;
}

std::vector<PhaseSnapshot> Profiler::phases() const {
  const std::lock_guard<std::mutex> lock(registerMutex_);
  std::vector<PhaseSnapshot> out;
  out.reserve(phases_.size());
  for (const Phase& p : phases_) {
    out.push_back(p.snapshot());
  }
  return out;
}

std::vector<CounterSnapshot> Profiler::counters() const {
  const std::lock_guard<std::mutex> lock(registerMutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const Counter& c : counters_) {
    out.push_back(c.snapshot());
  }
  return out;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(registerMutex_);
  for (Phase& p : phases_) {
    p.calls_.store(0, std::memory_order_relaxed);
    p.wallNs_.store(0, std::memory_order_relaxed);
    p.cpuNs_.store(0, std::memory_order_relaxed);
    p.maxWallNs_.store(0, std::memory_order_relaxed);
  }
  for (Counter& c : counters_) {
    c.value_.store(0, std::memory_order_relaxed);
  }
}

void Profiler::exportTo(MetricRegistry& registry, Cycles atCycle) const {
  for (const PhaseSnapshot& p : phases()) {
    const std::string prefix = "prof.phase." + p.name + ".";
    registry.gauge(prefix + "wall_ns", "ns")
        .record(atCycle, static_cast<double>(p.wallNs));
    registry.gauge(prefix + "cpu_ns", "ns")
        .record(atCycle, static_cast<double>(p.cpuNs));
    registry.gauge(prefix + "calls", "calls")
        .record(atCycle, static_cast<double>(p.calls));
    registry.gauge(prefix + "max_wall_ns", "ns")
        .record(atCycle, static_cast<double>(p.maxWallNs));
  }
  for (const CounterSnapshot& c : counters()) {
    registry.gauge("prof.counter." + c.name, c.unit)
        .record(atCycle, static_cast<double>(c.value));
  }
}

std::string Profiler::chromeTrace() const {
  // Host timeline: 1 "cycle" = 1 ns, clock 1.0 GHz, so the exporter's
  // cycles-to-microseconds conversion lands spans at the right scale.
  const Cycles window = static_cast<Cycles>(config_.exportWindowNs);
  RunTrace trace(std::max<Cycles>(1, window), config_.spanCapacity,
                 OverflowPolicy::kDropOldest, /*ghz=*/1.0);
  std::uint64_t endNs = elapsedNs();
  {
    const std::lock_guard<std::mutex> lock(spanMutex_);
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      const TraceEvent& e = spans_[i];
      trace.events.span(e.name, e.category, e.track, e.start, e.duration,
                        e.argName, e.arg);
      endNs = std::max(endNs, e.start + e.duration);
    }
    for (const auto& [track, name] : spans_.trackNames()) {
      trace.events.setTrackName(track, name);
    }
  }
  exportTo(trace.metrics, endNs == 0 ? 0 : endNs - 1);
  trace.metrics.finalize(endNs);
  return toChromeTraceJson(trace);
}

void Profiler::recordSpan(const Phase& phase, std::uint64_t startNs,
                          std::uint64_t durationNs) {
  const std::lock_guard<std::mutex> lock(spanMutex_);
  const auto id = std::this_thread::get_id();
  auto it = trackByThread_.find(id);
  if (it == trackByThread_.end()) {
    const auto track = static_cast<std::int32_t>(trackByThread_.size());
    it = trackByThread_.emplace(id, track).first;
    spans_.setTrackName(track, "thread " + std::to_string(track));
  }
  spans_.span(phase.name(), "prof", it->second, startNs, durationNs);
}

}  // namespace occm::obs
