#pragma once

// Structured event trace of one simulated run: span events (a named
// interval on a track — a controller busy period, a core's memory stall)
// and instant events (a context switch, a thread pinning). Events are
// buffered in a fixed-capacity ring (common/ring_buffer) so tracing has
// bounded memory regardless of run length; on overflow the sink either
// overwrites the oldest events (keep the end of the run) or drops the
// newest (keep the beginning), and counts what it lost either way.
//
// Tracks are integer lanes in the exported timeline — core ids for core
// events, kControllerTrackBase + node for controller events. Track names
// are attached once and exported as timeline metadata.

#include <cstdint>
#include <map>
#include <string>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"

namespace occm::obs {

enum class TracePhase : std::uint8_t {
  kSpan,     ///< interval [start, start+duration)
  kInstant,  ///< point event at start
};

/// Track-id convention used by the simulator's instrumentation.
inline constexpr std::int32_t kControllerTrackBase = 1000;

struct TraceEvent {
  std::string name;
  std::string category;   ///< e.g. "mem", "sched", "core"
  std::int32_t track = 0; ///< timeline lane (tid in Chrome trace terms)
  Cycles start = 0;
  Cycles duration = 0;    ///< 0 for instants
  TracePhase phase = TracePhase::kInstant;
  /// Optional numeric payload (argName empty = absent).
  std::string argName;
  double arg = 0.0;
};

enum class OverflowPolicy : std::uint8_t {
  kDropOldest,  ///< overwrite oldest events; trace keeps the run's tail
  kDropNewest,  ///< refuse new events once full; trace keeps the head
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity,
                     OverflowPolicy policy = OverflowPolicy::kDropOldest);

  void span(std::string name, std::string category, std::int32_t track,
            Cycles start, Cycles duration, std::string argName = {},
            double arg = 0.0);
  void instant(std::string name, std::string category, std::int32_t track,
               Cycles time, std::string argName = {}, double arg = 0.0);

  /// Human label for a track lane (exported as timeline metadata).
  void setTrackName(std::int32_t track, std::string name);
  [[nodiscard]] const std::map<std::int32_t, std::string>& trackNames()
      const noexcept {
    return trackNames_;
  }

  /// Events currently retained, oldest first.
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const TraceEvent& operator[](std::size_t i) const {
    return events_[i];
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return events_.capacity();
  }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }
  /// Events pushed over the sink's lifetime (retained + lost).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to overflow (overwritten or refused).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void push(TraceEvent event);

  RingBuffer<TraceEvent> events_;
  OverflowPolicy policy_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<std::int32_t, std::string> trackNames_;
};

}  // namespace occm::obs
