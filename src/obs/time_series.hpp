#pragma once

// Windowed time-series sampler over simulated time — the generic machinery
// behind every per-window metric the observability layer records (and
// behind perf::MissSampler, which is the paper's 5 us LLC-miss sampler
// specialised to one counter).
//
// Simulated time is bucketed into fixed windows of `windowCycles`; each
// record() lands in window `time / windowCycles`. Two metric kinds:
//  - kCounter: the window's value is the *sum* of the samples recorded in
//    it (e.g. requests per window, busy cycles per window). Empty windows
//    are zero.
//  - kGauge: the window's value is the *mean* of the samples recorded in
//    it (e.g. queue depth observed at each arrival). Empty windows carry
//    the last observed mean forward — a gauge keeps its level between
//    observations; windows before the first sample are zero.
//
// Sums are kept in double, which is exact for integer totals up to 2^53 —
// wide enough that the std::uint32_t overflow the old MissSampler could
// silently hit cannot recur.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace occm::obs {

enum class MetricKind : std::uint8_t {
  kCounter,  ///< per-window sum
  kGauge,    ///< per-window mean, carried forward over empty windows
};

class TimeSeries {
 public:
  /// `windowCycles`: bucket width in simulated cycles; must be positive.
  explicit TimeSeries(Cycles windowCycles,
                      MetricKind kind = MetricKind::kCounter);

  void record(Cycles time, double value = 1.0);

  /// Extends the series to cover [0, endTime) with empty trailing windows.
  /// Never shrinks.
  void finalize(Cycles endTime);

  [[nodiscard]] Cycles windowCycles() const noexcept { return window_; }
  [[nodiscard]] MetricKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t windowCount() const noexcept {
    return sums_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return sums_.empty(); }

  /// Start time (cycles) of window `i`.
  [[nodiscard]] Cycles windowStart(std::size_t i) const noexcept {
    return static_cast<Cycles>(i) * window_;
  }

  /// Raw sum of samples in window `i`.
  [[nodiscard]] double sum(std::size_t i) const;
  /// Number of samples recorded in window `i`.
  [[nodiscard]] std::uint64_t samples(std::size_t i) const;

  /// The window's metric value under this series' kind (see header note).
  [[nodiscard]] double value(std::size_t i) const;

  /// All window values, kind semantics applied (gauge carry-forward).
  [[nodiscard]] std::vector<double> values() const;

  /// Total of all recorded samples (counter grand total).
  [[nodiscard]] double total() const noexcept;

 private:
  Cycles window_;
  MetricKind kind_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace occm::obs
