#include "obs/metric_registry.hpp"

#include "common/error.hpp"

namespace occm::obs {

MetricRegistry::MetricRegistry(Cycles windowCycles) : window_(windowCycles) {
  OCCM_REQUIRE_MSG(windowCycles > 0, "window must be positive");
}

TimeSeries& MetricRegistry::open(std::string_view name, std::string_view unit,
                                 MetricKind kind) {
  OCCM_REQUIRE_MSG(!name.empty(), "metric name must be non-empty");
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Metric& existing = metrics_[it->second];
    OCCM_REQUIRE_MSG(existing.series.kind() == kind,
                     "metric re-opened with a different kind: " +
                         existing.name);
    return existing.series;
  }
  metrics_.push_back(Metric{std::string(name), std::string(unit),
                            TimeSeries(window_, kind)});
  index_.emplace(std::string(name), metrics_.size() - 1);
  return metrics_.back().series;
}

TimeSeries& MetricRegistry::counter(std::string_view name,
                                    std::string_view unit) {
  return open(name, unit, MetricKind::kCounter);
}

TimeSeries& MetricRegistry::gauge(std::string_view name,
                                  std::string_view unit) {
  return open(name, unit, MetricKind::kGauge);
}

const TimeSeries* MetricRegistry::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &metrics_[it->second].series;
}

void MetricRegistry::finalize(Cycles endTime) {
  for (Metric& m : metrics_) {
    m.series.finalize(endTime);
  }
}

}  // namespace occm::obs
