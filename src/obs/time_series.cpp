#include "obs/time_series.hpp"

#include "common/error.hpp"

namespace occm::obs {

TimeSeries::TimeSeries(Cycles windowCycles, MetricKind kind)
    : window_(windowCycles), kind_(kind) {
  OCCM_REQUIRE_MSG(windowCycles > 0, "window must be positive");
}

void TimeSeries::record(Cycles time, double value) {
  const auto idx = static_cast<std::size_t>(time / window_);
  if (sums_.size() <= idx) {
    sums_.resize(idx + 1, 0.0);
    counts_.resize(idx + 1, 0);
  }
  sums_[idx] += value;
  ++counts_[idx];
}

void TimeSeries::finalize(Cycles endTime) {
  const auto windows =
      static_cast<std::size_t>((endTime + window_ - 1) / window_);
  if (sums_.size() < windows) {
    sums_.resize(windows, 0.0);
    counts_.resize(windows, 0);
  }
}

double TimeSeries::sum(std::size_t i) const {
  OCCM_REQUIRE(i < sums_.size());
  return sums_[i];
}

std::uint64_t TimeSeries::samples(std::size_t i) const {
  OCCM_REQUIRE(i < counts_.size());
  return counts_[i];
}

double TimeSeries::value(std::size_t i) const {
  OCCM_REQUIRE(i < sums_.size());
  if (kind_ == MetricKind::kCounter) {
    return sums_[i];
  }
  // Gauge: mean of this window's samples, else last observed mean.
  for (std::size_t j = i + 1; j-- > 0;) {
    if (counts_[j] > 0) {
      return sums_[j] / static_cast<double>(counts_[j]);
    }
  }
  return 0.0;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out(sums_.size(), 0.0);
  double last = 0.0;
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    if (kind_ == MetricKind::kCounter) {
      out[i] = sums_[i];
    } else {
      if (counts_[i] > 0) {
        last = sums_[i] / static_cast<double>(counts_[i]);
      }
      out[i] = last;
    }
  }
  return out;
}

double TimeSeries::total() const noexcept {
  double total = 0.0;
  for (double s : sums_) {
    total += s;
  }
  return total;
}

}  // namespace occm::obs
