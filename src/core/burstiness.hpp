#pragma once

// Burstiness analysis of off-chip memory traffic (paper section III-B.2
// and Figure 4). A burst is the number of cache lines requested in one
// 5 us sampler window; traffic is *bursty* when the burst-size CCDF has a
// long (heavy) tail — log P(BurstSize > x) falling as a straight diagonal
// in log x — and *non-bursty* when the distribution concentrates around
// its mean because the memory system is saturated.

#include <cstdint>
#include <span>
#include <vector>

#include "stats/distribution.hpp"

namespace occm::model {

/// The paper's log-spaced x grid for Figure 4.
[[nodiscard]] std::vector<double> figure4Grid(double maxX = 2000.0);

struct BurstinessReport {
  std::uint64_t totalWindows = 0;
  std::uint64_t activeWindows = 0;  ///< windows with >= 1 requested line
  double meanBurst = 0.0;           ///< mean over active windows
  double maxBurst = 0.0;
  double cv = 0.0;                  ///< coefficient of variation (active)
  /// Fraction of windows with no off-chip request (idle gaps).
  double idleFraction = 0.0;
  /// Log-log tail fit of the CCDF for x >= meanBurst.
  stats::TailFit tail;
  /// Heavy-tail verdict (see isBursty for the criterion).
  bool bursty = false;
  /// CCDF evaluated on the Figure-4 grid.
  std::vector<stats::CcdfPoint> ccdf;
};

/// Classifies a sampled run. `windows` are per-window line counts
/// (perf::MissSampler::windows()).
[[nodiscard]] BurstinessReport analyzeBurstiness(
    std::span<const std::uint64_t> windows);

/// The classification criterion, exposed for testing: traffic is bursty
/// when burst sizes are highly variable (cv > 1) or the largest burst
/// dwarfs the mean (max/mean > 8) — both absent once the memory system is
/// saturated and every window carries a near-constant load.
[[nodiscard]] bool isBursty(double cv, double maxBurst, double meanBurst);

}  // namespace occm::model
