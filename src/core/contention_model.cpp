#include "core/contention_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "common/error.hpp"
#include "stats/summary.hpp"

namespace occm::model {

namespace {

/// Matches Options{}.robustFallbackR2 (kept in the header for visibility).
constexpr double kDefaultRobustFallbackR2 = 0.9;

/// "1, 4, 5" — the distinct core counts present, for diagnostics.
std::string coresPresent(std::span<const MeasuredPoint> points) {
  std::set<int> cores;
  for (const MeasuredPoint& p : points) {
    cores.insert(p.cores);
  }
  std::string out;
  for (int c : cores) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::to_string(c);
  }
  return out.empty() ? "none" : out;
}

}  // namespace

double degreeOfContention(double cyclesN, double cycles1) {
  OCCM_REQUIRE_MSG(cycles1 > 0.0, "C(1) must be positive");
  return (cyclesN - cycles1) / cycles1;
}

Expected<double, FitError> degreeOfContentionChecked(double cyclesN,
                                                     double cycles1) {
  if (!(cycles1 > 0.0) || !std::isfinite(cycles1)) {
    return makeUnexpected(FitError{
        FitErrorKind::kNonPositiveCycles,
        "C(1) = " + std::to_string(cycles1) + " is not a positive finite "
        "cycle count; omega(n) is undefined",
        1});
  }
  if (!std::isfinite(cyclesN)) {
    return makeUnexpected(FitError{
        FitErrorKind::kNonPositiveCycles,
        "C(n) = " + std::to_string(cyclesN) + " is not finite", 0});
  }
  return (cyclesN - cycles1) / cycles1;
}

MachineShape shapeOf(const topology::MachineSpec& spec) {
  MachineShape shape;
  shape.coresPerProcessor = spec.logicalCoresPerSocket();
  shape.processors = spec.sockets;
  shape.architecture = spec.memoryArchitecture;
  return shape;
}

std::vector<int> defaultFitCores(const MachineShape& shape) {
  const int k = shape.coresPerProcessor;
  std::vector<int> cores{1};
  if (shape.architecture == topology::MemoryArchitecture::kNuma && k > 2) {
    cores.push_back(2);
  }
  if (k > 1) {
    cores.push_back(k);
  }
  for (int p = 1; p < shape.processors; ++p) {
    // First boundary for every arch; later boundaries only for NUMA with
    // potentially heterogeneous interconnects (the paper's AMD protocol).
    if (p == 1 ||
        shape.architecture == topology::MemoryArchitecture::kNuma) {
      cores.push_back(p * k + 1);
    }
  }
  std::sort(cores.begin(), cores.end());
  cores.erase(std::unique(cores.begin(), cores.end()), cores.end());
  return cores;
}

SingleProcessorModel SingleProcessorModel::fit(
    std::span<const MeasuredPoint> points) {
  auto result = tryFit(points);
  if (!result) {
    throw ContractViolation("single-processor fit: " +
                            result.error().describe());
  }
  return *result;
}

Expected<SingleProcessorModel, FitError> SingleProcessorModel::tryFit(
    std::span<const MeasuredPoint> points, FitMethod method) {
  if (points.size() < 2) {
    return makeUnexpected(FitError{
        FitErrorKind::kTooFewPoints,
        "needs >= 2 measurements, got " + std::to_string(points.size()),
        0});
  }
  std::vector<stats::Point> inv;
  inv.reserve(points.size());
  std::set<int> distinct;
  for (const MeasuredPoint& p : points) {
    if (p.cores < 1) {
      return makeUnexpected(FitError{
          FitErrorKind::kInvalidCoreCount,
          "core count " + std::to_string(p.cores) + " is < 1", p.cores});
    }
    if (!(p.totalCycles > 0.0) || !std::isfinite(p.totalCycles)) {
      return makeUnexpected(FitError{
          FitErrorKind::kNonPositiveCycles,
          "measurement at n = " + std::to_string(p.cores) + " reports " +
              std::to_string(p.totalCycles) +
              " cycles (failed or empty run?)",
          p.cores});
    }
    distinct.insert(p.cores);
    inv.push_back({static_cast<double>(p.cores), 1.0 / p.totalCycles, 1.0});
  }
  if (distinct.size() < 2) {
    return makeUnexpected(FitError{
        FitErrorKind::kDuplicateCores,
        "all " + std::to_string(points.size()) +
            " measurements share core count " + coresPresent(points) +
            "; the 1/C(n) line needs two distinct n",
        *distinct.begin()});
  }
  SingleProcessorModel model;
  model.fit_ = method == FitMethod::kTheilSen ? stats::fitTheilSen(inv)
                                              : stats::fitLinear(inv);
  if (method == FitMethod::kRobustFallback &&
      model.fit_.r2 < kDefaultRobustFallbackR2) {
    model.fit_ = stats::fitTheilSen(inv);
  }
  // Saturation diagnosis: the open M/M/1 queue requires mu > n L across
  // the measured range; a non-positive intercept (mu/r <= 0) or a fitted
  // 1/C that crosses zero inside the data means the regime is saturated
  // and the model's predictions would be garbage.
  if (!(model.fit_.intercept > 0.0)) {
    return makeUnexpected(FitError{
        FitErrorKind::kSaturated,
        "fitted mu/r = " + std::to_string(model.fit_.intercept) +
            " is not positive",
        0});
  }
  for (const MeasuredPoint& p : points) {
    if (model.fit_.predict(static_cast<double>(p.cores)) <= 0.0) {
      return makeUnexpected(FitError{
          FitErrorKind::kSaturated,
          "fitted mu <= n L already at measured n = " +
              std::to_string(p.cores) + " (queue saturated in-range)",
          p.cores});
    }
  }
  return model;
}

double SingleProcessorModel::predict(double cores) const {
  OCCM_REQUIRE_MSG(cores >= 1.0, "core count must be >= 1");
  const double inv = fit_.predict(cores);
  // Clamp near/past saturation so the open-queue model stays finite.
  const double floor = kSaturationFloor * fit_.intercept;
  return 1.0 / std::max(inv, floor);
}

double SingleProcessorModel::saturationCores() const {
  if (fit_.slope >= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return fit_.intercept / -fit_.slope;
}

double colinearityR2(std::span<const MeasuredPoint> points) {
  OCCM_REQUIRE_MSG(points.size() >= 2, "R^2 needs >= 2 points");
  std::vector<stats::Point> inv;
  inv.reserve(points.size());
  for (const MeasuredPoint& p : points) {
    OCCM_REQUIRE_MSG(p.totalCycles > 0.0, "cycles must be positive");
    inv.push_back({static_cast<double>(p.cores), 1.0 / p.totalCycles, 1.0});
  }
  return stats::fitLinear(inv).r2;
}

ContentionModel ContentionModel::fit(const MachineShape& shape,
                                     std::span<const MeasuredPoint> points) {
  return fit(shape, points, Options{});
}

ContentionModel ContentionModel::fit(const MachineShape& shape,
                                     std::span<const MeasuredPoint> points,
                                     const Options& options) {
  auto result = tryFit(shape, points, options);
  if (!result) {
    throw ContractViolation("contention-model fit: " +
                            result.error().describe());
  }
  return *result;
}

Expected<ContentionModel, FitError> ContentionModel::tryFit(
    const MachineShape& shape, std::span<const MeasuredPoint> points) {
  return tryFit(shape, points, Options{});
}

Expected<ContentionModel, FitError> ContentionModel::tryFit(
    const MachineShape& shape, std::span<const MeasuredPoint> points,
    const Options& options) {
  if (shape.coresPerProcessor < 1 || shape.processors < 1) {
    return makeUnexpected(FitError{
        FitErrorKind::kInvalidShape,
        "machine shape " + std::to_string(shape.coresPerProcessor) +
            " cores/processor x " + std::to_string(shape.processors) +
            " processors has a non-positive dimension",
        0});
  }
  const int k = shape.coresPerProcessor;

  ContentionModel model;
  model.shape_ = shape;

  // Partition the measurements.
  std::vector<MeasuredPoint> first;
  for (const MeasuredPoint& p : points) {
    if (p.cores < 1 || p.cores > shape.totalCores()) {
      return makeUnexpected(FitError{
          FitErrorKind::kInvalidCoreCount,
          "measured point at n = " + std::to_string(p.cores) +
              " is outside the machine (1.." +
              std::to_string(shape.totalCores()) + ")",
          p.cores});
    }
    if (p.cores <= k) {
      first.push_back(p);
    }
    if (p.cores == 1 && p.totalCycles > 0.0) {
      model.c1_ = p.totalCycles;
    }
  }
  if (!(model.c1_ > 0.0)) {
    return makeUnexpected(FitError{
        FitErrorKind::kMissingC1,
        "no usable measurement at n = 1 to anchor omega; core counts "
        "present: " + coresPresent(points),
        1});
  }
  // Resolve the estimator: kRobustFallback means OLS unless its
  // colinearity R^2 on the first-processor points falls below the
  // configured threshold (outliers breaking the 1/C(n) linearity).
  FitMethod method = options.fitMethod;
  auto single = SingleProcessorModel::tryFit(
      first, method == FitMethod::kRobustFallback ? FitMethod::kOls : method);
  if (single && method == FitMethod::kRobustFallback &&
      single->fitInfo().r2 < options.robustFallbackR2) {
    single = SingleProcessorModel::tryFit(first, FitMethod::kTheilSen);
  }
  if (!single) {
    FitError error = single.error();
    error.message = "single-processor stage (n <= " + std::to_string(k) +
                    "): " + error.message;
    return makeUnexpected(std::move(error));
  }
  model.single_ = *single;

  // One slope per additional processor, from the first measured point
  // beyond that processor's boundary.
  //  - NUMA: the remote-access term rho (eq. 10 load-split by default,
  //    eq. 11 verbatim in proportional mode).
  //  - UMA: the per-extra-core bus correction DeltaC on top of the
  //    machine-wide shared-controller queue.
  model.options_ = options;
  model.slopes_.assign(static_cast<std::size_t>(shape.processors - 1), 0.0);
  const bool uma = shape.architecture == topology::MemoryArchitecture::kUma;
  for (int p = 1; p < shape.processors; ++p) {
    const int boundary = p * k;
    // First measured point in (boundary, boundary + k].
    const MeasuredPoint* chosen = nullptr;
    for (const MeasuredPoint& m : points) {
      if (m.cores > boundary && m.cores <= boundary + k &&
          (chosen == nullptr || m.cores < chosen->cores)) {
        chosen = &m;
      }
    }
    double slope = 0.0;
    if (options.homogeneousRemote && p > 1) {
      slope = model.slopes_[0];
    } else if (chosen != nullptr) {
      const int extra = chosen->cores - boundary;
      if (uma) {
        // Eq. 8 (shared controller): the single-queue curve spans the
        // machine; delta is the bus correction per extra core.
        slope = (chosen->totalCycles -
                 model.single_.predict(chosen->cores)) /
                static_cast<double>(extra);
      } else if (options.remoteMode == RemoteMode::kLoadSplit) {
        // Eq. 10: C_meas = C_s(n/m) + rho_r * n * (m-1)/m, m = p+1 active
        // processors at the chosen point.
        const double n = static_cast<double>(chosen->cores);
        const double m = static_cast<double>(p + 1);
        const double remote = n * (m - 1.0) / m;
        slope =
            (chosen->totalCycles - model.single_.predict(n / m)) / remote;
      } else {
        // Eq. 11 verbatim.
        slope = (chosen->totalCycles - model.chainedBoundary(p)) /
                static_cast<double>(extra);
      }
    } else if (p > 1) {
      // Reuse the previous processor's slope rather than failing.
      slope = model.slopes_[static_cast<std::size_t>(p - 2)];
    } else {
      return makeUnexpected(FitError{
          FitErrorKind::kMissingBoundary,
          "no measurement in (" + std::to_string(boundary) + ", " +
              std::to_string(boundary + k) +
              "] to fit the first remote slope; core counts present: " +
              coresPresent(points),
          boundary + 1});
    }
    model.slopes_[static_cast<std::size_t>(p - 1)] = slope;
  }
  return model;
}

double ContentionModel::chainedBoundary(int processor) const {
  // Model value at n = processor * k (all processors up to `processor`
  // fully active); used by the proportional (eq. 11 verbatim) mode.
  const int k = shape_.coresPerProcessor;
  double cycles = single_.predict(k);
  for (int q = 1; q < processor; ++q) {
    cycles += slopes_[static_cast<std::size_t>(q - 1)] *
              static_cast<double>(k);
  }
  return cycles;
}

double ContentionModel::predictCycles(int cores) const {
  OCCM_REQUIRE_MSG(cores >= 1 && cores <= shape_.totalCores(),
                   "core count outside the machine");
  const int k = shape_.coresPerProcessor;
  if (cores <= k) {
    return single_.predict(cores);
  }
  const int p = (cores - 1) / k;  // processor index of the last core
  const int extra = cores - p * k;
  if (shape_.architecture == topology::MemoryArchitecture::kUma) {
    // Eq. 8 (shared controller): machine-wide single queue plus the bus
    // correction for the cores beyond the first processor.
    double correction = 0.0;
    for (int q = 1; q <= p; ++q) {
      const int coresBeyond = std::min(cores - q * k, k);
      correction += slopes_[static_cast<std::size_t>(q - 1)] *
                    static_cast<double>(coresBeyond);
    }
    return single_.predict(cores) + correction;
  }
  if (options_.remoteMode == RemoteMode::kLoadSplit) {
    // Eq. 10: per-controller load n/m plus the remote-request penalty.
    const double n = static_cast<double>(cores);
    const double m = static_cast<double>(p + 1);
    return single_.predict(n / m) +
           slopes_[static_cast<std::size_t>(p - 1)] * n * (m - 1.0) / m;
  }
  // Eq. 11 verbatim: linear beyond the boundary.
  return chainedBoundary(p) + slopes_[static_cast<std::size_t>(p - 1)] *
                                  static_cast<double>(extra);
}

double ContentionModel::predictOmega(int cores) const {
  return degreeOfContention(predictCycles(cores), c1_);
}

ValidationReport validate(const ContentionModel& model,
                          std::span<const MeasuredPoint> measured) {
  OCCM_REQUIRE_MSG(!measured.empty(), "nothing to validate against");
  double c1 = model.measuredC1();
  for (const MeasuredPoint& p : measured) {
    if (p.cores == 1 && p.totalCycles > 0.0) {
      c1 = p.totalCycles;
    }
  }
  ValidationReport report;
  std::vector<double> meas;
  std::vector<double> pred;
  for (const MeasuredPoint& p : measured) {
    ValidationRow row;
    row.cores = p.cores;
    row.measuredCycles = p.totalCycles;
    row.predictedCycles = model.predictCycles(p.cores);
    row.predictedOmega = degreeOfContention(row.predictedCycles, c1);
    // A failed/empty run recorded as <= 0 cycles would turn the error and
    // omega columns into inf/NaN and poison the mean; flag it instead.
    if (p.totalCycles > 0.0 && std::isfinite(p.totalCycles)) {
      row.measuredOmega = degreeOfContention(p.totalCycles, c1);
      row.relativeError = std::abs(row.predictedCycles - row.measuredCycles) /
                          row.measuredCycles;
      meas.push_back(row.measuredCycles);
      pred.push_back(row.predictedCycles);
    } else {
      row.degenerate = true;
      ++report.degenerateRows;
    }
    report.rows.push_back(row);
  }
  report.meanRelativeError =
      meas.empty() ? 0.0 : stats::meanRelativeError(meas, pred);
  return report;
}

}  // namespace occm::model
