#pragma once

// Umbrella header: the public API of the occm library.
//
//   #include "core/occm.hpp"
//
// pulls in the contention model (the paper's contribution), the
// burstiness analyzer, the machine simulator, the workload kernels and
// the measurement facade — everything needed to reproduce the paper's
// measure -> observe -> model -> validate pipeline. Individual headers
// can of course be included directly.

#include "core/burstiness.hpp"          // IWYU pragma: export
#include "core/contention_model.hpp"    // IWYU pragma: export
#include "core/speedup.hpp"              // IWYU pragma: export
#include "perf/run_profile.hpp"         // IWYU pragma: export
#include "sim/machine_sim.hpp"          // IWYU pragma: export
#include "topology/presets.hpp"         // IWYU pragma: export
#include "workloads/workload.hpp"       // IWYU pragma: export
