#pragma once

// Speedup analysis on top of the contention model — the application the
// paper motivates (and develops in the authors' companion work, Tudor &
// Teo, IPDPS 2011 [26]): given a fitted contention model, predict the
// speedup of running on n cores and the core count that maximises it.
//
// With C(n) the total cycles across all active cores and the work spread
// evenly, wall time on n cores is C(n)/n, so
//     Speedup(n)    = C(1) / (C(n) / n) = n / (1 + omega(n))
//     Efficiency(n) = Speedup(n) / n    = 1 / (1 + omega(n))
// Contention (omega > 0) is exactly what separates measured speedup from
// the linear ideal.

#include "core/contention_model.hpp"

namespace occm::model {

/// Predicted speedup over the 1-core run.
[[nodiscard]] double predictSpeedup(const ContentionModel& model, int cores);

/// Predicted parallel efficiency in (0, 1] (can exceed 1 when omega < 0).
[[nodiscard]] double predictEfficiency(const ContentionModel& model,
                                       int cores);

struct SpeedupAdvice {
  int bestCores = 1;          ///< core count maximising predicted speedup
  double bestSpeedup = 1.0;
  /// Largest core count whose efficiency is >= the threshold.
  int efficientCores = 1;
  double efficiencyThreshold = 0.5;
};

/// Scans 1..totalCores and summarises (the capacity_advisor example).
[[nodiscard]] SpeedupAdvice adviseCores(const ContentionModel& model,
                                        double efficiencyThreshold = 0.5);

/// Measured speedup from a pair of observed runs (utility for validating
/// the predictions against sweeps).
[[nodiscard]] double measuredSpeedup(double cycles1, double cyclesN,
                                     int cores);

}  // namespace occm::model
