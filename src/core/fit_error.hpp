#pragma once

// Typed diagnoses for degenerate model-fit input. The paper's M/M/1 fit
// C(n) = r / (mu - n L) silently produces garbage (or diverges) on inputs
// a production sweep can easily hand it: a saturated regime (mu <= n L), a
// failed run reporting zero cycles, duplicate core counts, or too few
// surviving points after failure isolation. The hardened tryFit entry
// points return Expected<Model, FitError> so callers can record the
// diagnosis and keep the rest of the sweep alive.

#include <cstdint>
#include <string>

namespace occm::model {

enum class FitErrorKind : std::uint8_t {
  kTooFewPoints,      ///< fewer than 2 usable measurements
  kDuplicateCores,    ///< fewer than 2 distinct core counts
  kInvalidCoreCount,  ///< a point's core count is < 1 or outside the machine
  kNonPositiveCycles, ///< a point's cycles are <= 0 or non-finite
  kSaturated,         ///< fitted mu <= n L within the measured range
  kMissingC1,         ///< no measurement at n = 1 to anchor omega
  kMissingBoundary,   ///< no point beyond the first processor boundary
  kInvalidShape,      ///< machine shape with non-positive dimensions
};

[[nodiscard]] constexpr const char* toString(FitErrorKind kind) noexcept {
  switch (kind) {
    case FitErrorKind::kTooFewPoints: return "too-few-points";
    case FitErrorKind::kDuplicateCores: return "duplicate-cores";
    case FitErrorKind::kInvalidCoreCount: return "invalid-core-count";
    case FitErrorKind::kNonPositiveCycles: return "non-positive-cycles";
    case FitErrorKind::kSaturated: return "saturated";
    case FitErrorKind::kMissingC1: return "missing-c1";
    case FitErrorKind::kMissingBoundary: return "missing-boundary";
    case FitErrorKind::kInvalidShape: return "invalid-shape";
  }
  return "unknown";
}

struct FitError {
  FitErrorKind kind = FitErrorKind::kTooFewPoints;
  /// Human-readable diagnosis (offending values, counts present, ...).
  std::string message;
  /// Core count the diagnosis refers to; 0 when not point-specific.
  int cores = 0;

  [[nodiscard]] std::string describe() const {
    return std::string(toString(kind)) + ": " + message;
  }
};

}  // namespace occm::model
