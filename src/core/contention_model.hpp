#pragma once

// The paper's contribution (section IV): an analytical queueing model that
// relates off-chip memory contention to the number of active cores and
// the problem size, for UMA and NUMA multiprocessors.
//
//  - Within one processor the memory controller is an M/M/1 queue, so the
//    total cycles are C(n) = r(n) / (mu - n L)   (eq. 6) and 1/C(n) is
//    linear in n; mu and L come from linear regression on a handful of
//    measured runs.
//  - UMA multiprocessor (eq. 8): all cores queue at the one shared
//    controller, so the M/M/1 curve spans the whole machine; activating
//    the second processor adds its own front-side bus, captured by the
//    per-extra-core correction DeltaC fit from the first measurement
//    beyond one processor:  C(n > k) = C_s(n) + delta * (n - k).
//  - NUMA multiprocessor (eq. 10): with m processors active, memory is
//    spread over their controllers, so each controller queues n/m cores'
//    worth of demand and a (m-1)/m fraction of requests pays the remote
//    penalty rho per request:
//        C(n) = C_s(n/m) + rho_r * n * (m-1)/m
//    where C_s is the fitted single-processor curve. This reproduces the
//    measured sharp contention drop when a new controller comes online.
//    Fitting one rho per processor boundary captures heterogeneous hop
//    distances (the paper's five-point AMD fit); the homogeneous-rho
//    variant reuses the first slope everywhere (the three-point fit the
//    paper reports as ~25 % error on AMD). The literal eq. 11 form
//    C(n) = C(c) + r rho (n-c) is available as RemoteMode::kProportional.
//  - Degree of memory contention (Definition 1):
//    omega(n) = (C(n) - C(1)) / C(1).

#include <cstdint>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "core/fit_error.hpp"
#include "stats/regression.hpp"
#include "topology/machine_spec.hpp"

namespace occm::model {

/// One measured run: total cycles across all active cores.
struct MeasuredPoint {
  int cores = 0;
  double totalCycles = 0.0;
};

/// omega(n) per Definition 1. Negative values = positive cache effects.
/// Throws ContractViolation when C(1) is non-positive; use the checked
/// variant in harness code that must survive degenerate measurements.
[[nodiscard]] double degreeOfContention(double cyclesN, double cycles1);

/// Non-throwing omega(n): diagnoses non-positive or non-finite C(1)
/// (e.g. a failed run recorded as zero cycles) as a typed FitError
/// instead of dividing to inf/NaN.
[[nodiscard]] Expected<double, FitError> degreeOfContentionChecked(
    double cyclesN, double cycles1);

/// How the 1/C(n) regression line is estimated.
enum class FitMethod : std::uint8_t {
  kOls,       ///< ordinary least squares (the paper's estimator)
  kTheilSen,  ///< robust median-of-slopes (outlier-contaminated sweeps)
  /// OLS first; falls back to Theil-Sen when the OLS colinearity R^2
  /// drops below robustFallbackR2 (outliers breaking the linearity the
  /// model relies on).
  kRobustFallback,
};

/// The machine abstraction the model needs: processors of equal core
/// count filled one at a time.
struct MachineShape {
  int coresPerProcessor = 1;
  int processors = 1;
  topology::MemoryArchitecture architecture =
      topology::MemoryArchitecture::kUma;

  [[nodiscard]] int totalCores() const noexcept {
    return coresPerProcessor * processors;
  }
};

/// Derives the model-facing shape from a full machine spec.
[[nodiscard]] MachineShape shapeOf(const topology::MachineSpec& spec);

/// The paper's regression-input core counts for a machine shape:
/// UMA {1, k, k+1}; NUMA {1, 2, k, k+1} plus {p*k+1} for each additional
/// processor (heterogeneous interconnect). Matches the paper's choices:
/// {1,4,5} on Intel UMA, {1,2,12,13} on Intel NUMA, {1,12,13,25,37} on AMD.
[[nodiscard]] std::vector<int> defaultFitCores(const MachineShape& shape);

/// Single-processor M/M/1 model: C(n) = r / (mu - n L), fit from the
/// linearity of 1/C(n) in n.
class SingleProcessorModel {
 public:
  /// Fits from >= 2 points, all with 1 <= cores <= coresPerProcessor.
  /// Throws ContractViolation on degenerate input (thin wrapper over
  /// tryFit for callers that treat bad input as a programming error).
  [[nodiscard]] static SingleProcessorModel fit(
      std::span<const MeasuredPoint> points);

  /// Hardened fit: diagnoses degenerate input (too few points, duplicate
  /// or invalid core counts, non-positive/non-finite cycles, a fitted
  /// queue already saturated — mu <= n L — inside the measured range) as
  /// a typed FitError instead of throwing.
  [[nodiscard]] static Expected<SingleProcessorModel, FitError> tryFit(
      std::span<const MeasuredPoint> points,
      FitMethod method = FitMethod::kOls);

  /// Predicted C(n). Beyond the fitted saturation point the open queue
  /// diverges; predictions are clamped at kSaturationFloor of the
  /// intercept to keep them finite (documented deviation). Fractional
  /// core counts arise from the multi-controller load split (eq. 10).
  [[nodiscard]] double predict(double cores) const;

  /// mu / r and L / r (the regression intercept and negated slope).
  [[nodiscard]] double muOverR() const noexcept { return fit_.intercept; }
  [[nodiscard]] double lOverR() const noexcept { return -fit_.slope; }

  /// Core count at which the fitted queue saturates (mu = n L);
  /// +infinity when the fitted slope is non-negative (no contention).
  [[nodiscard]] double saturationCores() const;

  [[nodiscard]] const stats::LinearFit& fitInfo() const noexcept {
    return fit_;
  }

 private:
  static constexpr double kSaturationFloor = 0.02;
  stats::LinearFit fit_;  ///< 1/C(n) = intercept + slope * n
};

/// Colinearity goodness-of-fit R^2 of 1/C(n) vs n (Table IV).
[[nodiscard]] double colinearityR2(std::span<const MeasuredPoint> points);

/// The full hierarchical model.
class ContentionModel {
 public:
  enum class RemoteMode : std::uint8_t {
    /// Eq. 10 with interleaved placement: per-controller load n/m, remote
    /// fraction (m-1)/m (default; matches measured behaviour).
    kLoadSplit,
    /// Literal eq. 11: C(n) = C(k) + rho_r * (n - k), linear beyond each
    /// boundary with no controller load relief.
    kProportional,
  };

  struct Options {
    /// Reuse the first remote slope for every remote processor (the
    /// paper's three-point homogeneous-interconnect variant).
    bool homogeneousRemote = false;
    RemoteMode remoteMode = RemoteMode::kLoadSplit;
    /// Estimator for the single-processor 1/C(n) line.
    FitMethod fitMethod = FitMethod::kOls;
    /// kRobustFallback switches to Theil-Sen when the OLS colinearity
    /// R^2 of the first-processor points drops below this threshold.
    double robustFallbackR2 = 0.9;
  };

  /// Fits from measured points. Requirements: >= 2 points within the
  /// first processor (including n = 1); for each additional processor
  /// that should be modelled, at least one point just beyond its
  /// boundary (unless homogeneousRemote reuses the first boundary
  /// slope). Points are matched by the fill-processor-first policy.
  /// Throws ContractViolation on degenerate input (wrapper over tryFit).
  [[nodiscard]] static ContentionModel fit(
      const MachineShape& shape, std::span<const MeasuredPoint> points,
      const Options& options);

  /// Overload with default options.
  [[nodiscard]] static ContentionModel fit(
      const MachineShape& shape, std::span<const MeasuredPoint> points);

  /// Hardened fit: every precondition failure (invalid shape, points
  /// outside the machine, missing n = 1 anchor, missing boundary point,
  /// degenerate single-processor input, saturated regime) comes back as
  /// a typed FitError naming the offending core counts, so a sweep
  /// harness can log the diagnosis and keep the surviving runs.
  [[nodiscard]] static Expected<ContentionModel, FitError> tryFit(
      const MachineShape& shape, std::span<const MeasuredPoint> points,
      const Options& options);

  /// Overload with default options.
  [[nodiscard]] static Expected<ContentionModel, FitError> tryFit(
      const MachineShape& shape, std::span<const MeasuredPoint> points);

  /// Predicted total cycles C(n), 1 <= n <= shape.totalCores().
  [[nodiscard]] double predictCycles(int cores) const;

  /// Predicted omega(n), normalized by the measured C(1).
  [[nodiscard]] double predictOmega(int cores) const;

  [[nodiscard]] const MachineShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const SingleProcessorModel& singleProcessor() const noexcept {
    return single_;
  }
  /// Remote slope (cycles per additional core) for processor p >= 1;
  /// for UMA this is the per-core DeltaC term.
  [[nodiscard]] std::span<const double> remoteSlopes() const noexcept {
    return slopes_;
  }
  [[nodiscard]] double measuredC1() const noexcept { return c1_; }

 private:
  /// Model value of C at the boundary n = processor * coresPerProcessor.
  [[nodiscard]] double chainedBoundary(int processor) const;

  MachineShape shape_;
  Options options_;
  SingleProcessorModel single_;
  std::vector<double> slopes_;
  double c1_ = 0.0;
};

/// Model-vs-measurement comparison for one core count.
struct ValidationRow {
  int cores = 0;
  double measuredCycles = 0.0;
  double predictedCycles = 0.0;
  double measuredOmega = 0.0;
  double predictedOmega = 0.0;
  double relativeError = 0.0;  ///< |pred - meas| / meas (cycles)
  /// True when measuredCycles <= 0 (a failed/empty run): the error and
  /// omega columns are forced to 0 instead of dividing to inf/NaN, and
  /// the row is excluded from meanRelativeError.
  bool degenerate = false;
};

struct ValidationReport {
  std::vector<ValidationRow> rows;
  double meanRelativeError = 0.0;
  std::size_t degenerateRows = 0;  ///< rows excluded from the mean
};

/// Validates a fitted model against a full measurement sweep.
[[nodiscard]] ValidationReport validate(
    const ContentionModel& model, std::span<const MeasuredPoint> measured);

}  // namespace occm::model
