#include "core/speedup.hpp"

#include "common/error.hpp"

namespace occm::model {

double predictSpeedup(const ContentionModel& model, int cores) {
  const double c1 = model.measuredC1();
  const double cn = model.predictCycles(cores);
  OCCM_ASSERT(cn > 0.0);
  return c1 / (cn / static_cast<double>(cores));
}

double predictEfficiency(const ContentionModel& model, int cores) {
  return predictSpeedup(model, cores) / static_cast<double>(cores);
}

SpeedupAdvice adviseCores(const ContentionModel& model,
                          double efficiencyThreshold) {
  OCCM_REQUIRE_MSG(efficiencyThreshold > 0.0 && efficiencyThreshold <= 1.0,
                   "efficiency threshold must be in (0, 1]");
  SpeedupAdvice advice;
  advice.efficiencyThreshold = efficiencyThreshold;
  for (int n = 1; n <= model.shape().totalCores(); ++n) {
    const double speedup = predictSpeedup(model, n);
    if (speedup > advice.bestSpeedup) {
      advice.bestSpeedup = speedup;
      advice.bestCores = n;
    }
    if (speedup / n >= efficiencyThreshold) {
      advice.efficientCores = n;
    }
  }
  return advice;
}

double measuredSpeedup(double cycles1, double cyclesN, int cores) {
  OCCM_REQUIRE_MSG(cycles1 > 0.0 && cyclesN > 0.0, "cycles must be positive");
  OCCM_REQUIRE_MSG(cores >= 1, "need at least one core");
  return cycles1 / (cyclesN / static_cast<double>(cores));
}

}  // namespace occm::model
