#include "core/burstiness.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/summary.hpp"

namespace occm::model {

std::vector<double> figure4Grid(double maxX) {
  // 1, 2, 5, 10, 20, 50, ... up to maxX (the x ticks of Figure 4).
  std::vector<double> grid;
  for (double decade = 1.0; decade <= maxX; decade *= 10.0) {
    for (double m : {1.0, 2.0, 5.0}) {
      const double x = m * decade;
      if (x <= maxX) {
        grid.push_back(x);
      }
    }
  }
  return grid;
}

bool isBursty(double cv, double maxBurst, double meanBurst) {
  if (meanBurst <= 0.0) {
    return false;
  }
  return cv > 1.0 || maxBurst / meanBurst > 8.0;
}

BurstinessReport analyzeBurstiness(std::span<const std::uint64_t> windows) {
  OCCM_REQUIRE_MSG(!windows.empty(), "no sampler windows");
  BurstinessReport report;
  report.totalWindows = windows.size();

  std::vector<double> bursts;
  bursts.reserve(windows.size());
  stats::OnlineStats active;
  for (std::uint64_t w : windows) {
    if (w > 0) {
      bursts.push_back(static_cast<double>(w));
      active.add(static_cast<double>(w));
    }
  }
  report.activeWindows = bursts.size();
  report.idleFraction =
      1.0 - static_cast<double>(report.activeWindows) /
                static_cast<double>(report.totalWindows);
  if (bursts.empty()) {
    return report;  // no off-chip traffic at all
  }
  report.meanBurst = active.mean();
  report.maxBurst = active.max();
  report.cv = active.cv();
  report.bursty = isBursty(report.cv, report.maxBurst, report.meanBurst);

  const auto grid = figure4Grid(std::max(2000.0, report.maxBurst));
  report.ccdf = stats::ccdfAt(bursts, grid);
  report.tail = stats::fitLogLogTail(report.ccdf,
                                     std::max(1.0, report.meanBurst));
  return report;
}

}  // namespace occm::model
