#include "sim/machine_sim.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "perf/miss_sampler.hpp"

namespace occm::sim {

namespace {

enum class EventKind : std::uint8_t {
  kAdvance,  ///< core resumes executing operations
  kIssue,    ///< core presents its pending off-chip request to memory
};

struct Event {
  Cycles time = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break
  CoreId core = 0;
  EventKind kind = EventKind::kAdvance;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

struct CoreState {
  sched::RunQueue queue{{}};
  bool active = false;
  bool done = false;
  Cycles now = 0;
  Cycles quantumEnd = 0;
  // Pending off-chip access (set between kAdvance and kIssue).
  Addr pendingAddr = 0;
  bool pendingPrefetchable = false;
  bool pendingCoherence = false;
  bool pendingWriteback = false;
  Addr pendingWritebackLine = 0;
  // Counters.
  Cycles workCycles = 0;
  Cycles stallCycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llcMisses = 0;
  std::uint64_t coherenceMisses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t contextSwitches = 0;
};

}  // namespace

MachineSim::MachineSim(topology::MachineSpec spec, SimConfig config)
    : topo_(std::move(spec)), config_(config) {}

perf::RunProfile MachineSim::run(std::span<const trace::RefStreamPtr> streams,
                                 int activeCores,
                                 const std::string& programName) {
  const auto& spec = topo_.spec();
  OCCM_REQUIRE_MSG(!streams.empty(), "need at least one thread");
  OCCM_REQUIRE_MSG(activeCores >= 1 && activeCores <= spec.logicalCores(),
                   "active cores out of range");

  for (const trace::RefStreamPtr& s : streams) {
    OCCM_REQUIRE_MSG(s != nullptr, "null thread stream");
    s->reset();
  }

  const int threads = static_cast<int>(streams.size());
  const sched::Pinning pinning =
      sched::pinRoundRobin(topo_, threads, activeCores);

  cache::CacheHierarchy hierarchy(topo_);
  // The run seed perturbs the memory system's service jitter too, so two
  // sims with different seeds produce genuinely different runs.
  mem::MemoryConfig memoryConfig = config_.memory;
  memoryConfig.seed ^= config_.seed * 0x9e3779b97f4a7c15ULL;
  const std::vector<NodeId> activeNodes = topo_.activeNodes(activeCores);
  std::vector<int> nodeWeights;
  nodeWeights.reserve(activeNodes.size());
  for (NodeId node : activeNodes) {
    int weight = 0;
    for (CoreId c : topo_.activeCores(activeCores)) {
      weight += topo_.homeNode(c) == node ? 1 : 0;
    }
    nodeWeights.push_back(weight);
  }
  mem::MemorySystem memory(topo_, memoryConfig, activeNodes,
                           std::move(nodeWeights));
  Rng rng = Rng::substream(config_.seed, 0x5EDC0FFEEULL);

  const Cycles samplerWindow = std::max<Cycles>(
      1, nsToCycles(config_.samplerWindowNs, spec.clockGhz));
  perf::MissSampler sampler(samplerWindow);

  const int totalCores = spec.logicalCores();
  std::vector<CoreState> cores(static_cast<std::size_t>(totalCores));

  auto jitteredQuantum = [&]() {
    const double jitter = rng.uniform(0.95, 1.05);
    return static_cast<Cycles>(
        static_cast<double>(config_.sched.quantum) * jitter);
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  for (CoreId c = 0; c < totalCores; ++c) {
    CoreState& core = cores[static_cast<std::size_t>(c)];
    auto threadList = pinning.threadsOn[static_cast<std::size_t>(c)];
    if (threadList.empty()) {
      core.done = true;
      continue;
    }
    core.queue = sched::RunQueue(std::move(threadList));
    core.queue.start();
    core.active = true;
    core.quantumEnd = jitteredQuantum();
    events.push({0, seq++, c, EventKind::kAdvance});
  }


  // Advances a core until it blocks on an off-chip request, exhausts its
  // sync horizon, or finishes.
  auto advance = [&](CoreId coreId) {
    CoreState& core = cores[static_cast<std::size_t>(coreId)];
    const Cycles horizon = core.now + config_.syncHorizon;
    trace::Op op;
    while (true) {
      if (core.queue.empty()) {
        core.done = true;
        return;
      }
      if (core.now >= horizon) {
        events.push({core.now, seq++, coreId, EventKind::kAdvance});
        return;
      }
      if (core.now >= core.quantumEnd) {
        if (core.queue.rotate()) {
          core.now += config_.sched.contextSwitchCost;
          core.stallCycles += config_.sched.contextSwitchCost;
          ++core.contextSwitches;
        }
        core.quantumEnd = core.now + jitteredQuantum();
        continue;
      }
      const ThreadId thread = core.queue.current();
      auto& stream = *streams[static_cast<std::size_t>(thread)];
      if (!stream.next(op)) {
        core.queue.finish(thread);
        continue;
      }
      core.now += op.work;
      core.workCycles += op.work;
      core.instructions += op.instructions;
      const cache::AccessResult res =
          hierarchy.access(coreId, op.addr, op.write);
      // Prefetchable (streaming) accesses overlap the cache-hit path the
      // same way they overlap miss latency.
      const Cycles hitStall =
          op.prefetchable
              ? std::max<Cycles>(1, res.latency /
                                        static_cast<Cycles>(spec.prefetchMlp))
              : res.latency;
      core.now += hitStall;
      core.stallCycles += hitStall;
      if (res.offChip) {
        core.pendingAddr = op.addr;
        core.pendingPrefetchable = op.prefetchable;
        core.pendingCoherence = res.coherenceMiss;
        core.pendingWriteback = res.writeback;
        core.pendingWritebackLine = res.writebackLine;
        events.push({core.now, seq++, coreId, EventKind::kIssue});
        return;
      }
    }
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    CoreState& core = cores[static_cast<std::size_t>(ev.core)];
    OCCM_ASSERT(core.now <= ev.time || ev.kind == EventKind::kIssue);
    switch (ev.kind) {
      case EventKind::kAdvance: {
        core.now = std::max(core.now, ev.time);
        advance(ev.core);
        break;
      }
      case EventKind::kIssue: {
        const Cycles now = ev.time;
        if (config_.enableSampler) {
          sampler.record(now);
        }
        const mem::RequestTiming timing =
            memory.request(now, ev.core, core.pendingAddr);
        if (core.pendingWriteback) {
          memory.writeback(now, ev.core, core.pendingWritebackLine);
          ++core.writebacks;
        }
        ++core.llcMisses;
        core.coherenceMisses += core.pendingCoherence ? 1 : 0;
        // Prefetchable (stream) misses overlap up to prefetchMlp deep: the
        // observed per-miss stall shrinks accordingly while the memory
        // system still sees the full request load (approximation noted in
        // DESIGN.md). Dependent misses use corePerMlp (default blocking).
        const auto mlp = static_cast<Cycles>(core.pendingPrefetchable
                                                 ? spec.prefetchMlp
                                                 : spec.corePerMlp);
        const Cycles rawStall = timing.done - now;
        const Cycles stall = std::max<Cycles>(1, rawStall / mlp);
        core.stallCycles += stall;
        core.now = now + stall;
        events.push({core.now, seq++, ev.core, EventKind::kAdvance});
        break;
      }
    }
  }

  // Assemble the profile.
  perf::RunProfile profile;
  profile.program = programName;
  profile.machine = spec.name;
  profile.threads = threads;
  profile.activeCores = activeCores;
  profile.perCore.resize(static_cast<std::size_t>(totalCores));
  for (CoreId c = 0; c < totalCores; ++c) {
    const CoreState& core = cores[static_cast<std::size_t>(c)];
    OCCM_ASSERT(core.done || !core.active);
    perf::CounterSet& set = profile.perCore[static_cast<std::size_t>(c)];
    set.totalCycles = core.workCycles + core.stallCycles;
    set.stallCycles = core.stallCycles;
    set.instructions = core.instructions;
    set.llcMisses = core.llcMisses;
    profile.counters += set;
    profile.coherenceMisses += core.coherenceMisses;
    profile.writebacks += core.writebacks;
    profile.contextSwitches += core.contextSwitches;
    profile.makespan = std::max(profile.makespan, core.now);
  }
  profile.controllerStats.reserve(
      static_cast<std::size_t>(memory.controllers()));
  for (NodeId node = 0; node < memory.controllers(); ++node) {
    profile.controllerStats.push_back(memory.controllerStats(node));
  }
  if (config_.enableSampler) {
    sampler.finalize(profile.makespan);
    profile.missWindows = sampler.windows();
    profile.samplerWindowCycles = sampler.windowCycles();
  }
  return profile;
}

}  // namespace occm::sim
