#include "sim/machine_sim.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/error.hpp"
#include "common/fastdiv.hpp"
#include "common/rng.hpp"
#include "fault/crash_injection.hpp"
#include "fault/fault_engine.hpp"
#include "perf/miss_sampler.hpp"
#include "sim/event_queue.hpp"

namespace occm::sim {

namespace {

struct CoreState {
  sched::RunQueue queue{{}};
  bool active = false;
  bool done = false;
  Cycles now = 0;
  Cycles quantumEnd = 0;
  // Pending off-chip access (set between kAdvance and kIssue).
  Addr pendingAddr = 0;
  bool pendingPrefetchable = false;
  bool pendingCoherence = false;
  bool pendingWriteback = false;
  Addr pendingWritebackLine = 0;
  // Counters.
  Cycles workCycles = 0;
  Cycles stallCycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llcMisses = 0;
  std::uint64_t coherenceMisses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t contextSwitches = 0;
};

/// Observability adapter of one run: receives the memory system's
/// per-transfer callbacks and exposes the per-core/machine-wide series the
/// event loop records into. All pointers are null when metrics are off, so
/// hook sites reduce to a null test.
class RunObserver final : public mem::MemoryObserver {
 public:
  RunObserver(obs::RunTrace& trace, const obs::ObsConfig& config,
              int controllers, int totalCores)
      : trace_(trace), metricsOn_(config.metrics), eventsOn_(config.trace) {
    work.resize(static_cast<std::size_t>(totalCores), nullptr);
    stall.resize(static_cast<std::size_t>(totalCores), nullptr);
    if (!metricsOn_) {
      return;
    }
    llcMisses = &trace_.metrics.counter("sim.llc_misses", "lines/window");
    ctxSwitches =
        &trace_.metrics.counter("sched.ctx_switches", "switches/window");
    nodes_.reserve(static_cast<std::size_t>(controllers));
    for (NodeId n = 0; n < controllers; ++n) {
      const std::string p = "mem.node" + std::to_string(n) + ".";
      nodes_.push_back(NodeSeries{
          &trace_.metrics.counter(p + "requests", "transfers/window"),
          &trace_.metrics.counter(p + "busy", "cycles/window"),
          &trace_.metrics.counter(p + "row_hits", "hits/window"),
          &trace_.metrics.counter(p + "row_misses", "misses/window"),
          &trace_.metrics.gauge(p + "queue_wait", "cycles"),
          &trace_.metrics.gauge(p + "backlog", "cycles"),
      });
    }
  }

  /// Registers the work/stall split series of one active core.
  void openCore(CoreId core) {
    if (!metricsOn_) {
      return;
    }
    const std::string p = "core" + std::to_string(core) + ".";
    work[static_cast<std::size_t>(core)] =
        &trace_.metrics.counter(p + "work", "cycles/window");
    stall[static_cast<std::size_t>(core)] =
        &trace_.metrics.counter(p + "stall", "cycles/window");
  }

  void onTransfer(const mem::RequestObservation& o) override {
    if (metricsOn_) {
      NodeSeries& n = nodes_[static_cast<std::size_t>(o.node)];
      n.requests->record(o.arrival);
      n.busy->record(o.start, static_cast<double>(o.service));
      (o.rowHit ? n.rowHits : n.rowMisses)->record(o.start);
      if (!o.writeback) {
        n.queueWait->record(o.arrival, static_cast<double>(o.queueWait));
      }
      n.backlog->record(o.arrival, static_cast<double>(o.start - o.arrival));
    }
    if (eventsOn_) {
      trace_.events.span(o.writeback ? "writeback" : "service", "mem",
                         obs::kControllerTrackBase + o.node, o.start,
                         o.service, "queue_wait",
                         static_cast<double>(o.queueWait));
    }
  }

  /// Derives per-window controller utilization gauges from the busy
  /// counters; call after metrics are finalized to the run's makespan.
  void deriveUtilization(int channelsPerController) {
    if (!metricsOn_ || channelsPerController <= 0) {
      return;
    }
    const Cycles window = trace_.metrics.windowCycles();
    const double capacity = static_cast<double>(window) *
                            static_cast<double>(channelsPerController);
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      const obs::TimeSeries* busy = nodes_[n].busy;
      obs::TimeSeries& util = trace_.metrics.gauge(
          "mem.node" + std::to_string(n) + ".utilization", "fraction");
      for (std::size_t i = 0; i < busy->windowCount(); ++i) {
        util.record(busy->windowStart(i), busy->sum(i) / capacity);
      }
    }
  }

  [[nodiscard]] bool metricsOn() const noexcept { return metricsOn_; }
  [[nodiscard]] bool eventsOn() const noexcept { return eventsOn_; }

  // Per-core series, indexed by CoreId; null for inactive cores or when
  // metrics are off.
  std::vector<obs::TimeSeries*> work;
  std::vector<obs::TimeSeries*> stall;
  obs::TimeSeries* llcMisses = nullptr;
  obs::TimeSeries* ctxSwitches = nullptr;

 private:
  struct NodeSeries {
    obs::TimeSeries* requests;
    obs::TimeSeries* busy;
    obs::TimeSeries* rowHits;
    obs::TimeSeries* rowMisses;
    obs::TimeSeries* queueWait;
    obs::TimeSeries* backlog;
  };

  obs::RunTrace& trace_;
  bool metricsOn_;
  bool eventsOn_;
  std::vector<NodeSeries> nodes_;
};

}  // namespace

MachineSim::MachineSim(topology::MachineSpec spec, SimConfig config)
    : topo_(std::move(spec)), config_(config) {}

perf::RunProfile MachineSim::run(std::span<const trace::RefStreamPtr> streams,
                                 int activeCores,
                                 const std::string& programName) {
  const auto& spec = topo_.spec();
  OCCM_REQUIRE_MSG(!streams.empty(), "need at least one thread");
  OCCM_REQUIRE_MSG(activeCores >= 1 && activeCores <= spec.logicalCores(),
                   "active cores out of range");

  for (const trace::RefStreamPtr& s : streams) {
    OCCM_REQUIRE_MSG(s != nullptr, "null thread stream");
    s->reset();
  }

  const int threads = static_cast<int>(streams.size());
  const sched::Pinning pinning =
      sched::pinRoundRobin(topo_, threads, activeCores);

  cache::CacheHierarchy hierarchy(topo_);
  // The run seed perturbs the memory system's service jitter too, so two
  // sims with different seeds produce genuinely different runs.
  mem::MemoryConfig memoryConfig = config_.memory;
  memoryConfig.seed ^= config_.seed * 0x9e3779b97f4a7c15ULL;
  const std::vector<NodeId> activeNodes = topo_.activeNodes(activeCores);
  std::vector<int> nodeWeights;
  nodeWeights.reserve(activeNodes.size());
  for (NodeId node : activeNodes) {
    int weight = 0;
    for (CoreId c : topo_.activeCores(activeCores)) {
      weight += topo_.homeNode(c) == node ? 1 : 0;
    }
    nodeWeights.push_back(weight);
  }
  mem::MemorySystem memory(topo_, memoryConfig, activeNodes,
                           std::move(nodeWeights));
  Rng rng = Rng::substream(config_.seed, 0x5EDC0FFEEULL);

  // Fault scenario: compile the plan (validating it against this machine
  // and the run's active controllers); an empty plan leaves `fe` null so
  // the hot loops pay one predictable branch.
  fault::FaultEngine faultEngine(config_.faultPlan, topo_, activeNodes,
                                 config_.seed);
  fault::FaultEngine* const fe = faultEngine.idle() ? nullptr : &faultEngine;

  const Cycles samplerWindow = std::max<Cycles>(
      1, nsToCycles(config_.samplerWindowNs, spec.clockGhz));
  perf::MissSampler sampler(samplerWindow);

  const int totalCores = spec.logicalCores();
  std::vector<CoreState> cores(static_cast<std::size_t>(totalCores));

  // Observability: build the run trace and attach the memory observer.
  // `obs` stays disengaged (null) unless requested — and when
  // OCCM_OBS_ENABLED=0 the constant-false `enabled()` lets the compiler
  // drop every hook below.
  obs::RunTracePtr runTrace;
  std::optional<RunObserver> hooks;
  if (config_.observability.enabled()) {
    const Cycles obsWindow = std::max<Cycles>(
        1, nsToCycles(config_.observability.windowNs, spec.clockGhz));
    runTrace = std::make_shared<obs::RunTrace>(
        obsWindow, config_.observability.traceCapacity,
        config_.observability.overflow, spec.clockGhz);
    hooks.emplace(*runTrace, config_.observability, memory.controllers(),
                  totalCores);
    memory.setObserver(&*hooks);
    const std::vector<std::string> labels =
        sched::describePinning(pinning, topo_);
    for (CoreId c = 0; c < totalCores; ++c) {
      if (!pinning.threadsOn[static_cast<std::size_t>(c)].empty()) {
        hooks->openCore(c);
        runTrace->events.setTrackName(c,
                                      labels[static_cast<std::size_t>(c)]);
      }
    }
    for (NodeId n = 0; n < memory.controllers(); ++n) {
      runTrace->events.setTrackName(obs::kControllerTrackBase + n,
                                    "memory controller " + std::to_string(n));
    }
    if (hooks->eventsOn()) {
      for (ThreadId t = 0; t < threads; ++t) {
        runTrace->events.instant(
            "pin thread " + std::to_string(t), "sched",
            pinning.pinnedCore[static_cast<std::size_t>(t)], 0);
      }
      // Fault windows are known upfront; emit them as spans so the
      // degraded epochs line up under the affected track in the timeline.
      for (const fault::FaultEvent& e : config_.faultPlan.events()) {
        const std::int32_t track =
            e.kind == fault::FaultKind::kCoreThrottle
                ? e.target
                : obs::kControllerTrackBase + e.target;
        runTrace->events.span(
            std::string("fault:") + fault::toString(e.kind), "fault", track,
            e.start, e.end - e.start, "magnitude", e.magnitude);
      }
    }
  }

  // Raw hook pointer for the hot loops: null means "no observability",
  // making every instrumentation site one predictable branch.
  RunObserver* const hp = hooks ? &*hooks : nullptr;

  // Hot-path counters: plain locals (not atomics, not clock reads), always
  // accumulated — they are schedule-derived profile data like llcMisses,
  // deterministic across hosts and pool sizes. Only the *flush* into the
  // host-time profiler below is an observability feature.
  perf::HotPathStats hot;

  // Self-profiling: time the whole run under "sim.run" when a profiler is
  // attached. Compiled out with the rest of the obs layer.
#if OCCM_OBS_ENABLED
  std::optional<obs::ScopedPhase> runScope;
  if (config_.profiler != nullptr) {
    runScope.emplace(*config_.profiler, config_.profiler->phase("sim.run"));
  }
#endif

  // MLP divisors are fixed for the whole run (spec-validated >= 1); the
  // per-op and per-miss stall divisions use exact reciprocals instead of
  // hardware divides.
  const FastDiv prefetchMlpDiv(static_cast<Cycles>(spec.prefetchMlp));
  const FastDiv corePerMlpDiv(static_cast<Cycles>(spec.corePerMlp));

  auto jitteredQuantum = [&]() {
    const double jitter = rng.uniform(0.95, 1.05);
    return static_cast<Cycles>(
        static_cast<double>(config_.sched.quantum) * jitter);
  };

  // Calendar queue (sim/event_queue.hpp): pops in exactly the (time, seq)
  // order of the binary heap it replaced — pinned by the golden corpus
  // and the CalendarEventQueue property suite.
  CalendarEventQueue events;
  std::uint64_t seq = 0;
  for (CoreId c = 0; c < totalCores; ++c) {
    CoreState& core = cores[static_cast<std::size_t>(c)];
    auto threadList = pinning.threadsOn[static_cast<std::size_t>(c)];
    if (threadList.empty()) {
      core.done = true;
      continue;
    }
    core.queue = sched::RunQueue(std::move(threadList));
    core.queue.start();
    core.active = true;
    core.quantumEnd = jitteredQuantum();
    events.push({0, seq++, c, EventKind::kAdvance});
  }
  hot.eventsPushed = events.size();
  hot.maxEventQueueDepth = events.size();


  // Advances a core until it blocks on an off-chip request, exhausts its
  // sync horizon, or finishes.
  auto advance = [&](CoreId coreId) {
    CoreState& core = cores[static_cast<std::size_t>(coreId)];
    const Cycles horizon = core.now + config_.syncHorizon;
    trace::Op op;
    while (true) {
      if (core.queue.empty()) {
        core.done = true;
        return;
      }
      if (core.now >= horizon) {
        events.push({core.now, seq++, coreId, EventKind::kAdvance});
        ++hot.eventsPushed;
        hot.maxEventQueueDepth =
            std::max<std::uint64_t>(hot.maxEventQueueDepth, events.size());
        return;
      }
      if (core.now >= core.quantumEnd) {
        if (core.queue.rotate()) {
          core.now += config_.sched.contextSwitchCost;
          core.stallCycles += config_.sched.contextSwitchCost;
          ++core.contextSwitches;
          if (hp != nullptr) {
            if (hp->ctxSwitches != nullptr) {
              hp->ctxSwitches->record(core.now);
              hp->stall[static_cast<std::size_t>(coreId)]->record(
                  core.now,
                  static_cast<double>(config_.sched.contextSwitchCost));
            }
            if (hp->eventsOn()) {
              runTrace->events.instant("ctx-switch", "sched", coreId,
                                       core.now);
            }
          }
        }
        core.quantumEnd = core.now + jitteredQuantum();
        continue;
      }
      const ThreadId thread = core.queue.current();
      auto& stream = *streams[static_cast<std::size_t>(thread)];
      if (!stream.next(op)) {
        core.queue.finish(thread);
        continue;
      }
      // Thermal throttle window: the core retires `slowdown`x slower; the
      // stretch is stall (the pipeline is not retiring).
      if (fe != nullptr && fe->coreThrottled(coreId)) {
        const Cycles extra = fe->throttleExtra(coreId, core.now, op.work);
        if (extra > 0) {
          core.now += extra;
          core.stallCycles += extra;
          if (hp != nullptr && hp->metricsOn()) {
            hp->stall[static_cast<std::size_t>(coreId)]->record(
                core.now, static_cast<double>(extra));
          }
        }
      }
      core.now += op.work;
      core.workCycles += op.work;
      core.instructions += op.instructions;
      if (hp != nullptr && hp->metricsOn()) {
        hp->work[static_cast<std::size_t>(coreId)]->record(
            core.now, static_cast<double>(op.work));
      }
      const cache::AccessResult res =
          hierarchy.access(coreId, op.addr, op.write);
      // Prefetchable (streaming) accesses overlap the cache-hit path the
      // same way they overlap miss latency.
      const Cycles hitStall =
          op.prefetchable
              ? std::max<Cycles>(1, prefetchMlpDiv.divide(res.latency))
              : res.latency;
      core.now += hitStall;
      core.stallCycles += hitStall;
      if (hp != nullptr && hp->metricsOn()) {
        hp->stall[static_cast<std::size_t>(coreId)]->record(
            core.now, static_cast<double>(hitStall));
      }
      if (res.offChip) {
        core.pendingAddr = op.addr;
        core.pendingPrefetchable = op.prefetchable;
        core.pendingCoherence = res.coherenceMiss;
        core.pendingWriteback = res.writeback;
        core.pendingWritebackLine = res.writebackLine;
        events.push({core.now, seq++, coreId, EventKind::kIssue});
        ++hot.eventsPushed;
        hot.maxEventQueueDepth =
            std::max<std::uint64_t>(hot.maxEventQueueDepth, events.size());
        return;
      }
    }
  };

  // Lifecycle guards, hoisted so the hot loop pays one predictable branch
  // each: a cycle budget aborts deterministically (same budget, same run,
  // same abort event everywhere); a cancellation token aborts at the next
  // event boundary after the stop request lands.
  const Cycles cycleBudget = config_.cycleBudget;
  const bool pollCancel = config_.cancel.valid();
  // Deterministic crash injection (fault::FaultPlan::crash*): the process
  // dies at the first event boundary at or past the scripted cycle — the
  // same event on every machine and pool size — so crash-containment
  // paths are testable on demand. Filtered by active core count so a
  // sweep-wide plan can kill exactly one of its runs.
  const fault::FaultEvent* crash =
      config_.faultPlan.firstCrash(activeCores);

  while (!events.empty()) {
    // Lifecycle checks fire per event at the same deterministic (time,
    // seq) boundaries as before the calendar-queue rewrite; an abort
    // discards the whole run, so checking after the pop is equivalent.
    const Event ev = events.pop();
    if (crash != nullptr && ev.time >= crash->start) {
      fault::executeInjectedCrash(crash->kind, ev.time);
    }
    if (cycleBudget != 0 && ev.time > cycleBudget) {
      throw RunAborted(AbortReason::kCycleBudget, ev.time,
                       "simulation exceeded its cycle budget of " +
                           std::to_string(cycleBudget) +
                           " cycles (next event at cycle " +
                           std::to_string(ev.time) + ")");
    }
    if (pollCancel && config_.cancel.stopRequested()) {
      throw RunAborted(AbortReason::kCancelled, ev.time,
                       "run cancelled at simulated cycle " +
                           std::to_string(ev.time));
    }
    ++hot.eventsPopped;
    CoreState& core = cores[static_cast<std::size_t>(ev.core)];
    OCCM_ASSERT(core.now <= ev.time || ev.kind == EventKind::kIssue);
    switch (ev.kind) {
      case EventKind::kAdvance: {
        ++hot.advanceTurns;
        core.now = std::max(core.now, ev.time);
        advance(ev.core);
        break;
      }
      case EventKind::kIssue: {
        ++hot.issueTurns;
        const Cycles now = ev.time;
        if (config_.enableSampler) {
          sampler.record(now);
        }
        if (hp != nullptr && hp->llcMisses != nullptr) {
          hp->llcMisses->record(now);
        }
        // Apply fault-plan transitions and background injections scheduled
        // up to `now` before this request sees the memory system.
        if (fe != nullptr) {
          fe->advanceTo(now, memory);
        }
        const mem::RequestTiming timing =
            memory.request(now, ev.core, core.pendingAddr);
        if (core.pendingWriteback) {
          memory.writeback(now, ev.core, core.pendingWritebackLine);
          ++core.writebacks;
        }
        ++core.llcMisses;
        core.coherenceMisses += core.pendingCoherence ? 1 : 0;
        // Prefetchable (stream) misses overlap up to prefetchMlp deep: the
        // observed per-miss stall shrinks accordingly while the memory
        // system still sees the full request load (approximation noted in
        // DESIGN.md). Dependent misses use corePerMlp (default blocking).
        const FastDiv& mlpDiv =
            core.pendingPrefetchable ? prefetchMlpDiv : corePerMlpDiv;
        const Cycles rawStall = timing.done - now;
        const Cycles stall = std::max<Cycles>(1, mlpDiv.divide(rawStall));
        core.stallCycles += stall;
        core.now = now + stall;
        if (hp != nullptr) {
          if (hp->metricsOn()) {
            hp->stall[static_cast<std::size_t>(ev.core)]->record(
                core.now, static_cast<double>(stall));
          }
          if (hp->eventsOn()) {
            runTrace->events.span("mem-stall", "core", ev.core, now, stall,
                                  "queue_wait",
                                  static_cast<double>(timing.queueWait));
          }
        }
        events.push({core.now, seq++, ev.core, EventKind::kAdvance});
        ++hot.eventsPushed;
        hot.maxEventQueueDepth =
            std::max<std::uint64_t>(hot.maxEventQueueDepth, events.size());
        break;
      }
    }
  }

  // Assemble the profile.
  perf::RunProfile profile;
  profile.program = programName;
  profile.machine = spec.name;
  profile.threads = threads;
  profile.activeCores = activeCores;
  profile.perCore.resize(static_cast<std::size_t>(totalCores));
  for (CoreId c = 0; c < totalCores; ++c) {
    const CoreState& core = cores[static_cast<std::size_t>(c)];
    OCCM_ASSERT(core.done || !core.active);
    perf::CounterSet& set = profile.perCore[static_cast<std::size_t>(c)];
    set.totalCycles = core.workCycles + core.stallCycles;
    set.stallCycles = core.stallCycles;
    set.instructions = core.instructions;
    set.llcMisses = core.llcMisses;
    profile.counters += set;
    profile.coherenceMisses += core.coherenceMisses;
    profile.writebacks += core.writebacks;
    profile.contextSwitches += core.contextSwitches;
    profile.makespan = std::max(profile.makespan, core.now);
  }
  profile.controllerStats.reserve(
      static_cast<std::size_t>(memory.controllers()));
  for (NodeId node = 0; node < memory.controllers(); ++node) {
    profile.controllerStats.push_back(memory.controllerStats(node));
    profile.reroutedRequests += profile.controllerStats.back().absorbed;
    profile.faultRetries += profile.controllerStats.back().retryAttempts;
  }
  if (fe != nullptr) {
    profile.backgroundRequests = fe->backgroundIssued();
    profile.throttledCycles = fe->throttledCycles();
    profile.faultEpochs.reserve(config_.faultPlan.events().size());
    for (const fault::FaultEvent& e : config_.faultPlan.events()) {
      profile.faultEpochs.push_back(
          {fault::toString(e.kind), e.target, e.start, e.end, e.magnitude});
    }
  }
  hot.controllerTicks = memory.reservationOps();
  profile.hotPath = hot;
#if OCCM_OBS_ENABLED
  if (config_.profiler != nullptr) {
    obs::Profiler& prof = *config_.profiler;
    prof.counter("sim.events_popped").add(hot.eventsPopped);
    prof.counter("sim.events_pushed").add(hot.eventsPushed);
    prof.counter("sim.advance_turns").add(hot.advanceTurns);
    prof.counter("sim.issue_turns").add(hot.issueTurns);
    prof.counter("sim.controller_ticks", "reservations")
        .add(hot.controllerTicks);
  }
#endif
  profile.channelsPerController = spec.channelsPerController;
  if (config_.enableSampler) {
    sampler.finalize(profile.makespan);
    profile.missWindows = sampler.windows();
    profile.samplerWindowCycles = sampler.windowCycles();
  }
  if (runTrace != nullptr) {
    memory.setObserver(nullptr);
    // Degraded-mode counters ride into the metric registry (and from
    // there into CSV exports and Chrome counter tracks) so a faulted run
    // is diagnosable from its observability payload alone. Only faulted
    // runs carry these series — a healthy run's export is unchanged.
    if (fe != nullptr && hooks->metricsOn()) {
      const Cycles at = profile.makespan == 0 ? 0 : profile.makespan - 1;
      runTrace->metrics.gauge("fault.rerouted", "requests")
          .record(at, static_cast<double>(profile.reroutedRequests));
      runTrace->metrics.gauge("fault.retries", "attempts")
          .record(at, static_cast<double>(profile.faultRetries));
      runTrace->metrics.gauge("fault.background", "requests")
          .record(at, static_cast<double>(profile.backgroundRequests));
      runTrace->metrics.gauge("fault.throttled_cycles", "cycles")
          .record(at, static_cast<double>(profile.throttledCycles));
    }
    runTrace->metrics.finalize(profile.makespan);
    hooks->deriveUtilization(spec.channelsPerController);
    profile.trace = std::move(runTrace);
  }
  return profile;
}

}  // namespace occm::sim
