#pragma once

// Calendar (bucketed) event queue of the cycle-level event loop.
//
// The simulator's schedule has two structural properties a general
// priority queue cannot exploit: event times presented to push() never
// precede the last popped time (cores only schedule forward), and the
// queue never holds more than one event per active core (≤ tens). The
// calendar queue turns both into O(1) operations: events land in one of
// 64 time buckets of 2^logWidth cycles each (a window of 64·2^logWidth
// cycles), a one-word occupancy bitmap finds the earliest non-empty
// bucket with a rotate + countr_zero, and the handful of events inside
// that bucket are min-scanned for the exact (time, seq) order. Events
// beyond the window wait in an overflow list that is re-binned when the
// window drains and advances.
//
// Ordering is EXACTLY the total order of the (time, seq) pair — the same
// order std::priority_queue<Event, ..., EventLater> produces — because
// bucket time-ranges are disjoint and ascending within the window, the
// overflow list only holds events at or past the window's end, and ties
// inside one bucket are broken by the monotonic sequence number. The
// equivalence is pinned by tests/sim/test_event_queue.cpp against a
// reference heap over randomized monotone interleavings.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace occm::sim {

enum class EventKind : std::uint8_t {
  kAdvance,  ///< core resumes executing operations
  kIssue,    ///< core presents its pending off-chip request to memory
};

struct Event {
  Cycles time = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break among same-cycle events
  CoreId core = 0;
  EventKind kind = EventKind::kAdvance;
};

class CalendarEventQueue {
 public:
  /// `logWidth` is the log2 of the bucket width in cycles. The default
  /// (64-cycle buckets, 4096-cycle window) comfortably covers the
  /// simulator's typical push horizon — one op's work plus a memory
  /// stall — so overflow re-binning is rare.
  explicit CalendarEventQueue(unsigned logWidth = 6) : logWidth_(logWidth) {
    OCCM_REQUIRE_MSG(logWidth < 32, "bucket width out of range");
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Contract: `e.time` must not precede the time of the last pop() —
  /// the event loop only schedules forward. (The window never has to
  /// move backward, which is what keeps push O(1).)
  void push(const Event& e) {
    const std::uint64_t bucket = e.time >> logWidth_;
    OCCM_ASSERT(bucket >= base_);
    if (bucket - base_ < kBuckets) {
      const unsigned slot = bucket & kSlotMask;
      buckets_[slot].push_back(e);
      occupied_ |= std::uint64_t{1} << slot;
    } else {
      overflow_.push_back(e);
    }
    ++size_;
  }

  /// Removes and returns the minimum event in (time, seq) order.
  Event pop() {
    OCCM_REQUIRE_MSG(size_ != 0, "pop from empty event queue");
    if (occupied_ == 0) {
      advanceWindow();
    }
    // Earliest non-empty bucket: rotate the occupancy word so the
    // window's first slot is bit 0, then take the lowest set bit.
    const unsigned rot = static_cast<unsigned>(base_) & kSlotMask;
    const int offset =
        std::countr_zero(std::rotr(occupied_, static_cast<int>(rot)));
    const unsigned slot = (rot + static_cast<unsigned>(offset)) & kSlotMask;
    std::vector<Event>& bucket = buckets_[slot];
    // Exact (time, seq) min among the bucket's few events.
    std::size_t best = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      const Event& a = bucket[i];
      const Event& b = bucket[best];
      if (a.time < b.time || (a.time == b.time && a.seq < b.seq)) {
        best = i;
      }
    }
    const Event result = bucket[best];
    bucket[best] = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) {
      occupied_ &= ~(std::uint64_t{1} << slot);
    }
    --size_;
    return result;
  }

 private:
  static constexpr std::uint64_t kBuckets = 64;
  static constexpr unsigned kSlotMask = 63;

  /// All buckets are empty but events remain: jump the window forward to
  /// the earliest overflow event and re-bin what now fits.
  void advanceWindow() {
    OCCM_ASSERT(!overflow_.empty());
    std::uint64_t minBucket = overflow_.front().time >> logWidth_;
    for (std::size_t i = 1; i < overflow_.size(); ++i) {
      minBucket = std::min(minBucket, overflow_[i].time >> logWidth_);
    }
    base_ = minBucket;
    std::size_t keep = 0;
    for (const Event& e : overflow_) {
      const std::uint64_t bucket = e.time >> logWidth_;
      if (bucket - base_ < kBuckets) {
        const unsigned slot = bucket & kSlotMask;
        buckets_[slot].push_back(e);
        occupied_ |= std::uint64_t{1} << slot;
      } else {
        overflow_[keep++] = e;
      }
    }
    overflow_.resize(keep);
  }

  std::array<std::vector<Event>, kBuckets> buckets_;
  std::vector<Event> overflow_;
  std::uint64_t occupied_ = 0;  ///< bit s set <=> buckets_[s] non-empty
  std::uint64_t base_ = 0;      ///< absolute bucket number of window start
  std::size_t size_ = 0;
  unsigned logWidth_;
};

}  // namespace occm::sim
