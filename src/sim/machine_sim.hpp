#pragma once

// Cycle-level simulator of one multicore machine executing a pinned,
// possibly oversubscribed parallel program.
//
// Execution model (DESIGN.md, "Substitutions"):
//  - Each software thread is a trace::RefStream of operations (work cycles
//    followed by one memory access).
//  - Threads are pinned round-robin to the first n cores of the
//    fill-processor-first order and time-share a core with a quantum.
//  - Cache hits cost their level's hit latency (stall cycles); off-chip
//    misses become memory-system requests. A core blocks on a miss
//    (configurable miss-level parallelism divides the observed stall).
//  - Cores interact only through the cache/memory state, so the event loop
//    orders *memory* requests globally by time (which makes the FIFO
//    reservation model in mem:: exact) while each core's compute advances
//    asynchronously between its own misses.
//
// Counter semantics match the paper: total cycles per core = work cycles
// (operations retiring) + stall cycles (cache-hit latency, memory waits,
// context switches); idle cores accumulate nothing.
//
// Thread safety (audited for the parallel sweep engine, DESIGN.md §9):
// a MachineSim is NOT safe for concurrent run() calls — run() mutates the
// streams it is handed and builds its per-run state (cache hierarchy,
// memory system, fault engine, RNGs, observability sinks) as locals. But
// *distinct* instances share nothing: the class holds only value-typed
// configuration, the module has no static mutable state, and every RNG is
// derived from the config seed. One simulator + one workload instance per
// thread is therefore race-free and bit-deterministic.

#include <span>
#include <string>

#include "common/cancellation.hpp"
#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "mem/memory_system.hpp"
#include "obs/profiler.hpp"
#include "obs/run_trace.hpp"
#include "perf/run_profile.hpp"
#include "sched/affinity.hpp"
#include "topology/topology_map.hpp"
#include "trace/ref_stream.hpp"

namespace occm::sim {

struct SimConfig {
  sched::SchedConfig sched;
  mem::MemoryConfig memory;
  /// Record the 5 us LLC-miss sampler (Figure 4) into the profile.
  bool enableSampler = false;
  double samplerWindowNs = 5000.0;
  /// Observability: windowed metrics (controller utilization/queueing,
  /// per-core work/stall split, LLC-miss rate) and structured trace events
  /// (controller service spans, memory stalls, context switches), attached
  /// to the profile as `RunProfile::trace`. Off by default; when off the
  /// simulator pays one predicted branch per hook (OCCM_OBS_ENABLED=0
  /// compiles the hooks out entirely).
  obs::ObsConfig observability;
  /// Deterministic fault scenario scripted against simulated time:
  /// controller outages/degradation, core throttle windows, ECC-retry
  /// spikes and background traffic bursts (see fault::FaultPlan). The
  /// default empty plan costs one never-taken branch per event; scripted
  /// windows are recorded as RunProfile::faultEpochs and, with tracing
  /// on, as "fault"-category spans.
  fault::FaultPlan faultPlan;
  /// Maximum cycles a core may execute per event-loop turn. Cores only
  /// block on off-chip misses, so without this bound a core that stays
  /// cache-resident would run its whole thread in one turn and its cache/
  /// coherence state would never interleave with the other cores'.
  Cycles syncHorizon = 5'000;
  /// Simulated-cycle budget: the run aborts with RunAborted
  /// (AbortReason::kCycleBudget) as soon as the next event to execute is
  /// scheduled past this cycle. 0 = unlimited. Deterministic: the same
  /// budget aborts the same run at the same event everywhere.
  Cycles cycleBudget = 0;
  /// Cooperative cancellation: polled once per event-loop turn (the
  /// deterministic cancellation point); when a stop is requested the run
  /// unwinds with RunAborted (AbortReason::kCancelled). A default token
  /// never fires and costs one predictable branch per event.
  CancellationToken cancel;
  std::uint64_t seed = 7;
  /// Host-time self-profiler (obs::Profiler): when set, run() times itself
  /// under the "sim.run" phase and flushes the run's hot-path counters
  /// ("sim.events_popped", "sim.controller_ticks", ...) into it. Purely
  /// observational — the simulated result is bit-identical with or without
  /// it (pinned by Profiler.FingerprintUnchangedByProfiling). Not owned;
  /// must outlive the run. Ignored when OCCM_OBS_ENABLED=0.
  obs::Profiler* profiler = nullptr;
};

class MachineSim {
 public:
  explicit MachineSim(topology::MachineSpec spec, SimConfig config = {});

  [[nodiscard]] const topology::TopologyMap& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Runs `streams` (one per thread; streams are reset() first) on
  /// `activeCores` cores. Each call simulates from cold caches.
  [[nodiscard]] perf::RunProfile run(
      std::span<const trace::RefStreamPtr> streams, int activeCores,
      const std::string& programName = "workload");

 private:
  topology::TopologyMap topo_;
  SimConfig config_;
};

}  // namespace occm::sim
