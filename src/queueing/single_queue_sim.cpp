#include "queueing/single_queue_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace occm::queueing {

namespace {

/// Generates the arrival timestamps for the configured process.
std::vector<double> generateArrivals(const SingleQueueConfig& config,
                                     Rng& rng) {
  std::vector<double> arrivals;
  arrivals.reserve(config.requests);
  double t = 0.0;
  switch (config.arrivals) {
    case ArrivalProcess::kPoisson: {
      const double meanGap = 1.0 / config.lambda;
      for (std::uint64_t i = 0; i < config.requests; ++i) {
        t += rng.exponential(meanGap);
        arrivals.push_back(t);
      }
      break;
    }
    case ArrivalProcess::kBurstyOnOff: {
      // Bursts of back-to-back requests whose size is heavy tailed;
      // gaps between bursts keep the long-run rate at lambda.
      const double tightGap = 0.01 / config.lambda;
      while (arrivals.size() < config.requests) {
        const double burstSize = rng.boundedPareto(
            1.3, 1.0, std::max(2.0, config.burstMean * 50.0));
        const auto inBurst = static_cast<std::uint64_t>(
            std::min<double>(burstSize, static_cast<double>(
                                            config.requests - arrivals.size())));
        for (std::uint64_t i = 0; i < inBurst; ++i) {
          t += tightGap;
          arrivals.push_back(t);
        }
        // Gap sized so the long-run average rate stays lambda.
        const double burstSpan = static_cast<double>(inBurst) * tightGap;
        const double targetSpan = static_cast<double>(inBurst) / config.lambda;
        t += rng.exponential(std::max(0.0, targetSpan - burstSpan));
      }
      break;
    }
  }
  return arrivals;
}

}  // namespace

SingleQueueResult simulateSingleQueue(const SingleQueueConfig& config) {
  OCCM_REQUIRE_MSG(config.lambda > 0.0, "lambda must be positive");
  OCCM_REQUIRE_MSG(config.mu > 0.0, "mu must be positive");
  OCCM_REQUIRE_MSG(config.requests > 0, "simulate at least one request");

  Rng rng(config.seed);
  const std::vector<double> arrivals = generateArrivals(config, rng);

  SingleQueueResult result;
  double serverFreeAt = 0.0;
  double busyTime = 0.0;
  for (double arrival : arrivals) {
    const double start = std::max(arrival, serverFreeAt);
    const double service = config.service == ServiceDiscipline::kExponential
                               ? rng.exponential(1.0 / config.mu)
                               : 1.0 / config.mu;
    const double end = start + service;
    result.wait.add(start - arrival);
    result.sojourn.add(end - arrival);
    busyTime += service;
    serverFreeAt = end;
  }
  result.makespan = serverFreeAt;
  result.utilization = result.makespan == 0.0 ? 0.0 : busyTime / result.makespan;
  return result;
}

}  // namespace occm::queueing
