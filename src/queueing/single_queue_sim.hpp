#pragma once

// A standalone discrete-event simulator of one queueing station. It exists
// to (a) verify the closed-form models in models.hpp against simulation in
// tests, and (b) demonstrate that with Poisson arrivals and exponential
// service, measured sojourn times match 1/(mu - lambda) — the empirical
// basis of the paper's eq. 5.

#include <cstdint>

#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace occm::queueing {

enum class ServiceDiscipline : std::uint8_t {
  kExponential,   ///< M/M/1
  kDeterministic, ///< M/D/1
};

enum class ArrivalProcess : std::uint8_t {
  kPoisson,       ///< exponential inter-arrival gaps
  kBurstyOnOff,   ///< Pareto-distributed on-bursts separated by long gaps
};

struct SingleQueueConfig {
  double lambda = 0.5;  ///< mean arrival rate (requests per time unit)
  double mu = 1.0;      ///< service rate
  ServiceDiscipline service = ServiceDiscipline::kExponential;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// For bursty arrivals: mean requests per burst (Pareto tail, alpha 1.3).
  double burstMean = 16.0;
  std::uint64_t requests = 100'000;  ///< number of customers to simulate
  std::uint64_t seed = 42;
};

struct SingleQueueResult {
  stats::OnlineStats wait;     ///< queueing delay, excluding service
  stats::OnlineStats sojourn;  ///< wait + service
  double utilization = 0.0;    ///< busy time / makespan
  double makespan = 0.0;
};

/// Runs the single-queue simulation to completion.
[[nodiscard]] SingleQueueResult simulateSingleQueue(
    const SingleQueueConfig& config);

}  // namespace occm::queueing
