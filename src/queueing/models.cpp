#include "queueing/models.hpp"

#include <cmath>

#include "common/error.hpp"

namespace occm::queueing {

namespace {
void requireStable(double lambda, double mu) {
  OCCM_REQUIRE_MSG(lambda >= 0.0, "arrival rate must be non-negative");
  OCCM_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
  OCCM_REQUIRE_MSG(lambda < mu, "queue is unstable (lambda >= mu)");
}
}  // namespace

double mm1MeanSojourn(double lambda, double mu) {
  requireStable(lambda, mu);
  return 1.0 / (mu - lambda);
}

double mm1MeanWait(double lambda, double mu) {
  requireStable(lambda, mu);
  return lambda / (mu * (mu - lambda));
}

double mm1MeanCustomers(double lambda, double mu) {
  requireStable(lambda, mu);
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

double utilization(double lambda, double mu) {
  OCCM_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
  return lambda / mu;
}

double erlangC(double lambda, double mu, std::size_t servers) {
  OCCM_REQUIRE_MSG(servers >= 1, "need at least one server");
  OCCM_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
  const double a = lambda / mu;  // offered load in Erlangs
  const auto c = static_cast<double>(servers);
  OCCM_REQUIRE_MSG(a < c, "M/M/c unstable (offered load >= servers)");
  // Sum a^k/k! computed iteratively to avoid overflow.
  double term = 1.0;
  double sum = 1.0;
  for (std::size_t k = 1; k < servers; ++k) {
    term *= a / static_cast<double>(k);
    sum += term;
  }
  const double topTerm = term * (a / c) / (1.0 - a / c);
  return topTerm / (sum + topTerm);
}

double mmcMeanSojourn(double lambda, double mu, std::size_t servers) {
  const double pWait = erlangC(lambda, mu, servers);
  const auto c = static_cast<double>(servers);
  const double rho = lambda / (c * mu);
  return pWait / (c * mu * (1.0 - rho)) + 1.0 / mu;
}

double md1MeanSojourn(double lambda, double mu) {
  return mg1MeanSojourn(lambda, mu, 0.0);
}

double mg1MeanSojourn(double lambda, double mu, double scv) {
  requireStable(lambda, mu);
  OCCM_REQUIRE_MSG(scv >= 0.0, "squared CV must be non-negative");
  const double rho = lambda / mu;
  // Pollaczek-Khinchine: Wq = rho/(1-rho) * (1+scv)/2 * (1/mu).
  const double wq = rho / (1.0 - rho) * (1.0 + scv) / 2.0 / mu;
  return wq + 1.0 / mu;
}

RepairmanResult machineRepairman(std::size_t stations, double z, double mu) {
  OCCM_REQUIRE_MSG(stations >= 1, "need at least one station");
  OCCM_REQUIRE_MSG(z >= 0.0, "think time must be non-negative");
  OCCM_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
  const double s = 1.0 / mu;
  // Mean-value analysis for a closed network with one delay station (think)
  // and one queueing station (the server).
  double q = 0.0;  // mean queue length seen at the server
  double x = 0.0;  // system throughput
  double r = s;    // response time at the server
  for (std::size_t k = 1; k <= stations; ++k) {
    r = s * (1.0 + q);
    x = static_cast<double>(k) / (z + r);
    q = x * r;
  }
  RepairmanResult result;
  result.throughput = x;
  result.meanSojourn = r;
  result.utilization = x * s;
  result.meanQueueLength = q;
  return result;
}

}  // namespace occm::queueing
