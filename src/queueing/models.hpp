#pragma once

// Closed-form queueing results (Jain, "The Art of Computer Systems
// Performance Analysis", 1991 — the paper's reference [11]).
//
// The paper's contention model is built on M/M/1: the mean number of cycles
// to service one off-chip request with n active cores is
// C_req(n) = 1 / (mu - n L) (paper eq. 5). The other disciplines here back
// the ablation benches (service-discipline sensitivity) and the closed
// machine-repairman model explains why a real (finite-population) machine
// saturates instead of diverging.

#include <cstddef>

namespace occm::queueing {

/// Mean sojourn time (wait + service) in an M/M/1 queue.
/// lambda: arrival rate, mu: service rate; requires lambda < mu.
[[nodiscard]] double mm1MeanSojourn(double lambda, double mu);

/// Mean queueing delay (excluding service) in an M/M/1 queue.
[[nodiscard]] double mm1MeanWait(double lambda, double mu);

/// Mean number of customers in an M/M/1 system.
[[nodiscard]] double mm1MeanCustomers(double lambda, double mu);

/// Server utilization lambda/mu (valid for any single-server queue).
[[nodiscard]] double utilization(double lambda, double mu);

/// Erlang C probability of queueing in an M/M/c system.
[[nodiscard]] double erlangC(double lambda, double mu, std::size_t servers);

/// Mean sojourn time in an M/M/c queue (c parallel servers, shared queue).
[[nodiscard]] double mmcMeanSojourn(double lambda, double mu,
                                    std::size_t servers);

/// Mean sojourn time in an M/D/1 queue (deterministic service 1/mu).
[[nodiscard]] double md1MeanSojourn(double lambda, double mu);

/// Mean sojourn time in an M/G/1 queue via the Pollaczek-Khinchine formula.
/// scv is the squared coefficient of variation of service time
/// (0 = deterministic, 1 = exponential).
[[nodiscard]] double mg1MeanSojourn(double lambda, double mu, double scv);

/// Machine-repairman (closed M/M/1//N) model: N stations each "think" for
/// mean time z then queue for a single server with mean service 1/mu.
struct RepairmanResult {
  double throughput = 0.0;     ///< jobs per unit time through the server
  double meanSojourn = 0.0;    ///< mean time at the server (wait + service)
  double utilization = 0.0;    ///< server utilization in [0, 1]
  double meanQueueLength = 0.0;
};

/// Exact solution by mean-value analysis. `stations` >= 1, z >= 0, mu > 0.
[[nodiscard]] RepairmanResult machineRepairman(std::size_t stations, double z,
                                               double mu);

}  // namespace occm::queueing
