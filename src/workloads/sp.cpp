// SP — scalar pentadiagonal solver on a 3-D structured grid (NPB SP).
// Each time step computes the right-hand side with a 7-point stencil and
// then performs forward/backward line solves along x, y and z. Cells hold
// five unknowns (40 B); the y and z sweeps stride by one row / one plane
// of 40 B cells, touching a new cache line per cell, and rewrite the
// solution — SP therefore combines the highest off-chip miss rate of the
// dwarf set with heavy writeback traffic, which is why it shows the
// paper's largest contention (omega up to 11.6).

#include "workloads/kernels.hpp"

#include "workloads/kernel_util.hpp"

namespace occm::workloads {

namespace {

struct SpParams {
  std::uint64_t grid = 0;  ///< G: G^3 cells
  int steps = 3;
  Cycles workStencil = 8;
  Cycles workSolveLine = 4;  ///< per streamed line in the x solve
  Cycles workSolveCell = 4;  ///< per cell in the strided y/z solves
};

/// NPB SP: 12^3 (S) .. 162^3 (C); scaled 32x in footprint.
SpParams paramsFor(ProblemClass cls) {
  SpParams p;
  switch (cls) {
    case ProblemClass::kS:
      p.grid = 8;
      p.steps = 16;
      break;
    case ProblemClass::kW:
      p.grid = 12;
      p.steps = 10;
      break;
    case ProblemClass::kA:
      p.grid = 24;
      p.steps = 6;
      break;
    case ProblemClass::kB:
      p.grid = 40;
      p.steps = 4;
      break;
    case ProblemClass::kC:
      p.grid = 64;
      break;
    default:
      OCCM_REQUIRE_MSG(false, "SP takes NPB letter classes");
  }
  return p;
}

}  // namespace

KernelBuild buildSp(ProblemClass cls, int threads, std::uint64_t seed) {
  OCCM_REQUIRE(threads >= 1);
  (void)seed;  // SP's access pattern is fully structural
  const SpParams p = paramsFor(cls);
  const std::uint64_t g = p.grid;
  const std::uint64_t cells = g * g * g;
  constexpr Bytes kCell = 40;  // 5 doubles per cell

  trace::AddressSpace space;
  const Addr u = space.allocShared(cells * kCell);
  const Addr rhs = space.allocShared(cells * kCell);
  const Addr lhs = space.allocShared(cells * kCell);

  KernelBuild build;
  build.sharedBytes = space.sharedBytes();
  build.sizeDescription = std::to_string(g) +
                          "^3 grid, 5 unknowns/cell (scaled from NPB " +
                          problemClassName(cls) + ")";
  build.threadPhases.resize(static_cast<std::size_t>(threads));

  auto pencilPhase = [&](Addr base, std::uint64_t stride, bool write) {
    Phase phase;
    phase.kind = Phase::Kind::kStrided;
    phase.base = base;
    phase.count = g;
    phase.strideBytes = static_cast<std::int64_t>(stride);
    phase.workPerOp = p.workSolveCell;
    phase.write = write;
    phase.prefetchable = true;  // constant-stride sweep
    return phase;
  };

  for (int t = 0; t < threads; ++t) {
    auto& phases = build.threadPhases[static_cast<std::size_t>(t)];
    const Range slab = threadRange(cells, threads, t);
    const Range pencils = threadRange(g * g, threads, t);
    const Addr slabOff = slab.begin * kCell;
    const Bytes slabBytes = slab.size() * kCell;
    for (int step = 0; step < p.steps; ++step) {
      // compute_rhs: stencil reads of u, write of rhs.
      phases.push_back(seqLines(u + slabOff, slabBytes, p.workStencil));
      phases.push_back(seqLines(u + slabOff, slabBytes, p.workStencil));
      phases.push_back(
          seqLines(rhs + slabOff, slabBytes, p.workStencil, /*write=*/true));
      // x_solve: unit-stride forward + backward substitution.
      phases.push_back(seqLines(lhs + slabOff, slabBytes, p.workSolveLine));
      phases.push_back(
          seqLines(rhs + slabOff, slabBytes, p.workSolveLine, /*write=*/true));
      phases.push_back(seqLines(lhs + slabOff, slabBytes, p.workSolveLine));
      phases.push_back(
          seqLines(u + slabOff, slabBytes, p.workSolveLine, /*write=*/true));
      // y_solve and z_solve: per-pencil forward (read lhs) and backward
      // (write rhs) sweeps at row / plane stride.
      for (std::uint64_t pc = pencils.begin; pc < pencils.end; ++pc) {
        const std::uint64_t x = pc % g;
        const std::uint64_t z = pc / g;
        const Addr yBase = (z * g * g + x) * kCell;
        phases.push_back(pencilPhase(lhs + yBase, g * kCell, false));
        phases.push_back(pencilPhase(rhs + yBase, g * kCell, true));
        phases.push_back(pencilPhase(u + yBase, g * kCell, true));
      }
      for (std::uint64_t pc = pencils.begin; pc < pencils.end; ++pc) {
        const std::uint64_t x = pc % g;
        const std::uint64_t y = pc / g;
        const Addr zBase = (y * g + x) * kCell;
        phases.push_back(pencilPhase(lhs + zBase, g * g * kCell, false));
        phases.push_back(pencilPhase(rhs + zBase, g * g * kCell, true));
        phases.push_back(pencilPhase(u + zBase, g * g * kCell, true));
      }
    }
  }
  return build;
}

}  // namespace occm::workloads
