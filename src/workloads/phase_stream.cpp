#include "workloads/phase_stream.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm::workloads {

PhaseStream::PhaseStream(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  gather_.resize(phases_.size());
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const Phase& p = phases_[i];
    OCCM_REQUIRE_MSG(p.kind != Phase::Kind::kGather || p.tableBytes > 0,
                     "gather phase needs a table size");
    OCCM_REQUIRE_MSG(p.kind != Phase::Kind::kGather || p.elementBytes > 0,
                     "gather phase needs an element size");
    totalOps_ += p.count;
    if (p.kind == Phase::Kind::kGather) {
      const std::uint64_t elements = p.tableBytes / p.elementBytes;
      OCCM_REQUIRE_MSG(elements > 0, "gather table smaller than an element");
      gather_[i].elements = elements;
      gather_[i].elementsDiv = FastDiv(elements);
    }
  }
}

bool PhaseStream::next(trace::Op& op) {
  while (phaseIdx_ < phases_.size() &&
         posInPhase_ >= phases_[phaseIdx_].count) {
    ++phaseIdx_;
    posInPhase_ = 0;
  }
  if (phaseIdx_ >= phases_.size()) {
    return false;
  }
  const Phase& phase = phases_[phaseIdx_];

  switch (phase.kind) {
    case Phase::Kind::kStrided:
      op.addr = static_cast<Addr>(
          static_cast<std::int64_t>(phase.base) +
          static_cast<std::int64_t>(posInPhase_) * phase.strideBytes);
      break;
    case Phase::Kind::kGather: {
      // Deterministic per-(seed, position) index: the same phase replayed
      // revisits the same elements, like a fixed sparse pattern. The
      // element-count modulo uses the reciprocal precomputed in the
      // constructor (exact, so the index sequence is unchanged).
      SplitMix64 h(phase.seed ^ (posInPhase_ * 0x9e3779b97f4a7c15ULL));
      op.addr = phase.base + gather_[phaseIdx_].elementsDiv.modulo(h.next()) *
                                 phase.elementBytes;
      break;
    }
  }
  op.write = phase.write;
  op.prefetchable = phase.prefetchable;
  op.instructions = phase.instrPerOp;
  op.work = phase.workPerOp;
  if (phase.jitterWork && phase.workPerOp > 0) {
    // +/-25 % deterministic jitter from the op counter.
    SplitMix64 h(opCounter_ * 0xD1B54A32D192ED03ULL + phase.seed);
    const auto w = static_cast<double>(phase.workPerOp);
    const double factor =
        0.75 + 0.5 * (static_cast<double>(h.next() >> 11) * 0x1.0p-53);
    op.work = static_cast<Cycles>(w * factor + 0.5);
  }
  ++posInPhase_;
  ++opCounter_;
  return true;
}

void PhaseStream::reset() {
  phaseIdx_ = 0;
  posInPhase_ = 0;
  opCounter_ = 0;
}

Phase seqLines(Addr base, Bytes bytes, Cycles workPerOp, bool write) {
  Phase p;
  p.kind = Phase::Kind::kStrided;
  p.base = base;
  p.count = (bytes + 63) / 64;
  p.strideBytes = 64;
  p.workPerOp = workPerOp;
  p.write = write;
  p.prefetchable = true;
  return p;
}

}  // namespace occm::workloads
