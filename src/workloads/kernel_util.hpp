#pragma once

// Small shared helpers for the kernel builders.

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace occm::workloads {

/// Half-open range of work items owned by one thread.
struct Range {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};

/// Contiguous block partition of `total` items over `threads` threads
/// (remainder spread over the first threads, like OpenMP static).
[[nodiscard]] inline Range threadRange(std::uint64_t total, int threads,
                                       int thread) {
  OCCM_REQUIRE(threads >= 1 && thread >= 0 && thread < threads);
  const auto t = static_cast<std::uint64_t>(threads);
  const auto i = static_cast<std::uint64_t>(thread);
  const std::uint64_t base = total / t;
  const std::uint64_t extra = total % t;
  const std::uint64_t begin = i * base + std::min(i, extra);
  return {begin, begin + base + (i < extra ? 1 : 0)};
}

/// Deterministic 64-bit hash of up to three values (phase seeds).
[[nodiscard]] inline std::uint64_t hashSeed(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c = 0) {
  SplitMix64 h(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
               (c * 0xbf58476d1ce4e5b9ULL));
  return h.next();
}

}  // namespace occm::workloads
