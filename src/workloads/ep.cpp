// EP — embarrassingly parallel (NPB EP): each thread generates batches of
// pseudo-random pairs, transforms them (compute heavy: log/sqrt per pair)
// and tallies acceptance counts.
//
// Memory behaviour: the batch buffer is thread-private and small (4 KiB),
// so off-chip traffic is nearly zero on one socket — but the per-batch
// tallies land in a shared counter table spanning two cache lines, so
// every tally by a thread invalidates the other threads' copies. Within a
// socket the re-fetch hits the shared LLC; across sockets it goes
// off-chip. This reproduces the paper's EP observations: ~zero contention
// on UMA, a *negative* contention region while one NUMA socket fills
// (more cores = more private cache for the buffers), and a contention
// rise beyond one socket driven by a growing LLC-miss count.

#include "workloads/kernels.hpp"

#include "workloads/kernel_util.hpp"

namespace occm::workloads {

namespace {

struct EpParams {
  std::uint64_t batches = 0;   ///< per thread
  Bytes bufferBytes = 8 * kKiB;
  Cycles workWalk = 60;        ///< per buffer line: RNG + log/sqrt pairs
  Cycles workTally = 20;
  std::uint32_t talliesPerBatch = 36;
};

/// NPB EP scales as 2^24 (S) .. 2^32 (C) random pairs; batches scale
/// accordingly (compute time dominates, the buffer stays tiny).
EpParams paramsFor(ProblemClass cls) {
  EpParams p;
  switch (cls) {
    case ProblemClass::kS:
      p.batches = 30;
      break;
    case ProblemClass::kW:
      p.batches = 200;
      break;
    case ProblemClass::kA:
      p.batches = 400;
      break;
    case ProblemClass::kB:
      p.batches = 700;
      break;
    case ProblemClass::kC:
      p.batches = 1'000;
      break;
    default:
      OCCM_REQUIRE_MSG(false, "EP takes NPB letter classes");
  }
  return p;
}

}  // namespace

KernelBuild buildEp(ProblemClass cls, int threads, std::uint64_t seed) {
  OCCM_REQUIRE(threads >= 1);
  const EpParams p = paramsFor(cls);

  trace::AddressSpace space;
  // Shared tally table: 10 annulus counters + the sx/sy sums, two lines.
  const Addr tallies = space.allocShared(128);

  KernelBuild build;
  build.sizeDescription =
      std::to_string(p.batches) + " batches/thread of " +
      std::to_string(p.bufferBytes) + " B private pairs (scaled from NPB " +
      problemClassName(cls) + ")";
  build.threadPhases.resize(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    const Addr buffer = space.allocPrivate(t, p.bufferBytes);
    auto& phases = build.threadPhases[static_cast<std::size_t>(t)];
    for (std::uint64_t batch = 0; batch < p.batches; ++batch) {
      // Generate the batch, then transform it: two walks of the buffer,
      // with the per-pair tallies interleaved at sub-batch granularity so
      // tally writes from different cores collide in time (as the real
      // per-pair increments do).
      constexpr std::uint64_t kSubBatches = 4;
      const Bytes subBytes = p.bufferBytes / kSubBatches;
      for (std::uint64_t sub = 0; sub < kSubBatches; ++sub) {
        const Addr subBase = buffer + sub * subBytes;
        phases.push_back(seqLines(subBase, subBytes, p.workWalk,
                                  /*write=*/true));
        phases.push_back(seqLines(subBase, subBytes, p.workWalk,
                                  /*write=*/false));
        Phase tally;
        tally.kind = Phase::Kind::kGather;
        tally.base = tallies;
        tally.tableBytes = 128;
        tally.elementBytes = 8;
        tally.count = p.talliesPerBatch / kSubBatches;
        tally.workPerOp = p.workTally;
        tally.write = true;
        tally.seed = hashSeed(seed, static_cast<std::uint64_t>(t),
                              batch * kSubBatches + sub);
        phases.push_back(tally);
      }
    }
  }
  build.sharedBytes = space.sharedBytes();
  return build;
}

}  // namespace occm::workloads
