#pragma once

// Phase-list builders for the six workload kernels. Each builder returns
// one phase list per thread, walking the kernel's real loop nest at cache-
// line granularity for streamed arrays and element granularity for
// gathers/scatters (DESIGN.md, "Substitutions").
//
// Problem sizes follow the paper's classes at the 32x joint scale of the
// machine presets: S/W working sets fit the (scaled) caches, A straddles
// the LLC, B/C far exceed it — the regimes that drive the paper's two
// contention behaviours.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trace/address_space.hpp"
#include "workloads/phase_stream.hpp"
#include "workloads/problem.hpp"

namespace occm::workloads {

/// Result of building a kernel: one phase list per thread plus footprint.
struct KernelBuild {
  std::vector<std::vector<Phase>> threadPhases;
  Bytes sharedBytes = 0;
  /// Human-readable problem-size description (Table III analogue).
  std::string sizeDescription;
};

/// EP — embarrassingly parallel. Private RNG-batch walks (tiny working
/// set, compute heavy) plus per-batch tallies into a shared, falsely
/// shared counter table: the source of the paper's EP coherence effects.
[[nodiscard]] KernelBuild buildEp(ProblemClass cls, int threads,
                                  std::uint64_t seed);

/// IS — integer bucket sort. Sequential key scans, private bucket counts,
/// and a permutation-write phase over the shared output array.
[[nodiscard]] KernelBuild buildIs(ProblemClass cls, int threads,
                                  std::uint64_t seed);

/// FT — 3-D FFT. One unit-stride pass and two large-stride (pencil)
/// passes over the complex grid per iteration.
[[nodiscard]] KernelBuild buildFt(ProblemClass cls, int threads,
                                  std::uint64_t seed);

/// CG — conjugate gradient. Streamed sparse-matrix chunks interleaved
/// with gathers into the iterate vector, plus vector updates and dot
/// reductions (with the OpenMP-style shared partial-sum line).
[[nodiscard]] KernelBuild buildCg(ProblemClass cls, int threads,
                                  std::uint64_t seed);

/// SP — pentadiagonal solver. RHS stencil plus forward/backward sweeps
/// along x (unit stride), y (row stride) and z (plane stride); writes
/// dominate, producing heavy writeback traffic.
[[nodiscard]] KernelBuild buildSp(ProblemClass cls, int threads,
                                  std::uint64_t seed);

/// x264 — H.264 encode. Per-frame streaming loads (the bursts), cache-
/// resident motion-search gathers, and output writes; frames round-robin
/// across threads.
[[nodiscard]] KernelBuild buildX264(ProblemClass cls, int threads,
                                    std::uint64_t seed);

/// Dispatches to the right builder.
[[nodiscard]] KernelBuild buildKernel(Program program, ProblemClass cls,
                                      int threads, std::uint64_t seed);

}  // namespace occm::workloads
