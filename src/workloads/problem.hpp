#pragma once

// Program and problem-class identifiers for the paper's benchmark set
// (Table I): five NPB 3.3 OpenMP dwarfs and PARSEC x264.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace occm::workloads {

enum class Program : std::uint8_t {
  kEP,    ///< embarrassingly parallel: low data dependency, low memory
  kIS,    ///< parallel bucket sort on integers
  kFT,    ///< spectral method: 3-D fast Fourier transform
  kCG,    ///< sparse linear algebra: conjugate gradient
  kSP,    ///< structured grid: pentadiagonal solver
  kX264,  ///< H.264 video encoding (PARSEC)
};

/// NPB letter classes plus the PARSEC input sizes.
enum class ProblemClass : std::uint8_t {
  kS,
  kW,
  kA,
  kB,
  kC,
  kSimSmall,
  kSimMedium,
  kSimLarge,
  kNative,
};

[[nodiscard]] constexpr const char* programName(Program p) {
  switch (p) {
    case Program::kEP:
      return "EP";
    case Program::kIS:
      return "IS";
    case Program::kFT:
      return "FT";
    case Program::kCG:
      return "CG";
    case Program::kSP:
      return "SP";
    case Program::kX264:
      return "x264";
  }
  return "?";
}

[[nodiscard]] constexpr const char* problemClassName(ProblemClass c) {
  switch (c) {
    case ProblemClass::kS:
      return "S";
    case ProblemClass::kW:
      return "W";
    case ProblemClass::kA:
      return "A";
    case ProblemClass::kB:
      return "B";
    case ProblemClass::kC:
      return "C";
    case ProblemClass::kSimSmall:
      return "simsmall";
    case ProblemClass::kSimMedium:
      return "simmedium";
    case ProblemClass::kSimLarge:
      return "simlarge";
    case ProblemClass::kNative:
      return "native";
  }
  return "?";
}

/// True when the class is valid for the program (NPB programs take letter
/// classes; x264 takes the PARSEC input sizes).
[[nodiscard]] constexpr bool classValidFor(Program p, ProblemClass c) {
  const bool letter = c == ProblemClass::kS || c == ProblemClass::kW ||
                      c == ProblemClass::kA || c == ProblemClass::kB ||
                      c == ProblemClass::kC;
  return p == Program::kX264 ? !letter : letter;
}

/// "CG.C", "x264.native", ... (the paper's notation).
[[nodiscard]] inline std::string workloadName(Program p, ProblemClass c) {
  return std::string(programName(p)) + "." + problemClassName(c);
}

/// Inverse of programName; nullopt on unknown names (wire inputs resolve
/// to a typed bad-request, never a throw).
[[nodiscard]] inline std::optional<Program> parseProgram(
    std::string_view name) {
  for (const Program p : {Program::kEP, Program::kIS, Program::kFT,
                          Program::kCG, Program::kSP, Program::kX264}) {
    if (name == programName(p)) {
      return p;
    }
  }
  return std::nullopt;
}

/// Inverse of problemClassName; nullopt on unknown names.
[[nodiscard]] inline std::optional<ProblemClass> parseProblemClass(
    std::string_view name) {
  for (const ProblemClass c :
       {ProblemClass::kS, ProblemClass::kW, ProblemClass::kA, ProblemClass::kB,
        ProblemClass::kC, ProblemClass::kSimSmall, ProblemClass::kSimMedium,
        ProblemClass::kSimLarge, ProblemClass::kNative}) {
    if (name == problemClassName(c)) {
      return c;
    }
  }
  return std::nullopt;
}

}  // namespace occm::workloads
