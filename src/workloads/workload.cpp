#include "workloads/workload.hpp"

#include "common/error.hpp"
#include "workloads/kernels.hpp"

namespace occm::workloads {

KernelBuild buildKernel(Program program, ProblemClass cls, int threads,
                        std::uint64_t seed) {
  OCCM_REQUIRE_MSG(classValidFor(program, cls),
                   "problem class not valid for this program");
  switch (program) {
    case Program::kEP:
      return buildEp(cls, threads, seed);
    case Program::kIS:
      return buildIs(cls, threads, seed);
    case Program::kFT:
      return buildFt(cls, threads, seed);
    case Program::kCG:
      return buildCg(cls, threads, seed);
    case Program::kSP:
      return buildSp(cls, threads, seed);
    case Program::kX264:
      return buildX264(cls, threads, seed);
  }
  OCCM_REQUIRE_MSG(false, "unknown program");
  return {};
}

WorkloadInstance makeWorkload(const WorkloadSpec& spec) {
  OCCM_REQUIRE_MSG(spec.threads >= 1, "need at least one thread");
  KernelBuild build =
      buildKernel(spec.program, spec.problemClass, spec.threads, spec.seed);

  WorkloadInstance instance;
  instance.name = workloadName(spec.program, spec.problemClass);
  instance.sizeDescription = std::move(build.sizeDescription);
  instance.sharedBytes = build.sharedBytes;
  instance.threads.reserve(build.threadPhases.size());
  for (auto& phases : build.threadPhases) {
    auto stream = std::make_unique<PhaseStream>(std::move(phases));
    instance.totalOps += stream->totalOps();
    instance.threads.push_back(std::move(stream));
  }
  return instance;
}

}  // namespace occm::workloads
