#pragma once

// PhaseStream: a lazy operation stream described by a small list of phase
// descriptors. All six workload kernels (EP, IS, FT, CG, SP, x264) are
// expressed as phase lists that walk their real loop nests:
//
//  - kStrided: `count` accesses from `base` with a fixed byte stride
//    (stride 64 = one access per cache line of a streamed array, stride 0
//    = repeated access to one location, large strides = the y/z sweeps of
//    SP or the transpose passes of FT);
//  - kGather: `count` accesses at pseudo-random elements of a table
//    (CG's p[colidx[k]] gather, IS's scatter). The index sequence is a
//    deterministic function of the phase seed, so re-running a phase with
//    the same seed touches the same elements in the same order (cache
//    reuse across solver iterations, as in the real kernels).
//
// Each operation carries `workPerOp` compute cycles; a deterministic
// +/-25 % per-op jitter (hash of the op counter) desynchronises cores the
// way real instruction streams do.

#include <cstdint>
#include <vector>

#include "common/fastdiv.hpp"
#include "common/types.hpp"
#include "trace/ref_stream.hpp"

namespace occm::workloads {

struct Phase {
  enum class Kind : std::uint8_t { kStrided, kGather };

  Kind kind = Kind::kStrided;
  Addr base = 0;
  std::uint64_t count = 0;        ///< operations in this phase
  std::int64_t strideBytes = 64;  ///< kStrided only (may be 0 or negative)
  Bytes tableBytes = 0;           ///< kGather only: table size
  std::uint32_t elementBytes = 8; ///< kGather only: element granularity
  Cycles workPerOp = 1;
  std::uint32_t instrPerOp = 4;
  bool write = false;
  /// Covered by a hardware prefetcher (sequential / constant stride).
  bool prefetchable = false;
  bool jitterWork = true;
  std::uint64_t seed = 0;         ///< kGather index-sequence seed
};

class PhaseStream final : public trace::RefStream {
 public:
  explicit PhaseStream(std::vector<Phase> phases);

  bool next(trace::Op& op) override;
  void reset() override;

  /// Total operations across all phases.
  [[nodiscard]] std::uint64_t totalOps() const noexcept { return totalOps_; }

 private:
  /// Per-phase values that are loop-invariant but were being re-derived
  /// on every op: the gather table's element count and its division
  /// reciprocal. `h.next() % elements` with a hardware divide was a
  /// visible slice of CG's runtime; FastDiv::modulo is exact, so the
  /// generated index sequence is bit-identical.
  struct GatherExec {
    std::uint64_t elements = 1;
    FastDiv elementsDiv;
  };

  std::vector<Phase> phases_;
  std::vector<GatherExec> gather_;  ///< parallel to phases_
  std::size_t phaseIdx_ = 0;
  std::uint64_t posInPhase_ = 0;
  std::uint64_t opCounter_ = 0;  ///< global op index (work jitter hash)
  std::uint64_t totalOps_ = 0;
};

/// Convenience: sequential walk over `bytes` bytes emitting one access per
/// cache line (64 B), the pattern of a streamed array.
[[nodiscard]] Phase seqLines(Addr base, Bytes bytes, Cycles workPerOp,
                             bool write = false);

}  // namespace occm::workloads
