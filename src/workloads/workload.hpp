#pragma once

// Workload factory: turns a (program, problem class, thread count) triple
// into the per-thread reference streams the simulator executes.

#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/ref_stream.hpp"
#include "workloads/problem.hpp"

namespace occm::workloads {

struct WorkloadSpec {
  Program program = Program::kCG;
  ProblemClass problemClass = ProblemClass::kC;
  /// Software threads. <= 0 means "one per machine logical core" when the
  /// spec is resolved by the harness (the paper's fixed-threads protocol).
  int threads = 0;
  std::uint64_t seed = 2011;
};

/// A ready-to-run workload instance.
struct WorkloadInstance {
  std::string name;  ///< "CG.C" etc.
  std::string sizeDescription;
  std::vector<trace::RefStreamPtr> threads;
  Bytes sharedBytes = 0;
  std::uint64_t totalOps = 0;
};

/// Builds the workload. Throws ContractViolation for invalid
/// program/class combinations.
[[nodiscard]] WorkloadInstance makeWorkload(const WorkloadSpec& spec);

}  // namespace occm::workloads
