#pragma once

// Workload factory: turns a (program, problem class, thread count) triple
// into the per-thread reference streams the simulator executes.
//
// Thread safety: makeWorkload is a pure function of its spec — kernels
// draw only from RNGs seeded by spec.seed and touch no static state — so
// concurrent calls are safe and two builds from the same spec produce
// bit-identical streams. The returned instance owns mutable stream state
// and must stay confined to one simulation at a time; parallel sweeps
// build one instance per task instead of sharing a reset one.

#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/ref_stream.hpp"
#include "workloads/problem.hpp"

namespace occm::workloads {

struct WorkloadSpec {
  Program program = Program::kCG;
  ProblemClass problemClass = ProblemClass::kC;
  /// Software threads. <= 0 means "one per machine logical core" when the
  /// spec is resolved by the harness (the paper's fixed-threads protocol).
  int threads = 0;
  std::uint64_t seed = 2011;
};

/// A ready-to-run workload instance.
struct WorkloadInstance {
  std::string name;  ///< "CG.C" etc.
  std::string sizeDescription;
  std::vector<trace::RefStreamPtr> threads;
  Bytes sharedBytes = 0;
  std::uint64_t totalOps = 0;
};

/// Builds the workload. Throws ContractViolation for invalid
/// program/class combinations.
[[nodiscard]] WorkloadInstance makeWorkload(const WorkloadSpec& spec);

}  // namespace occm::workloads
