// FT — 3-D fast Fourier transform (NPB FT). Each iteration applies a 1-D
// FFT along every dimension of a complex grid (16 B per point, x fastest):
// the x pass walks the grid at unit stride; the y and z passes walk
// "pencils" at strides of one row (G*16 B) and one plane (G^2*16 B).
// Those large-stride pencil passes touch a new cache line per point and
// are the source of FT's heavy off-chip traffic.
//
// Pencils (and x-pass slabs) are block-partitioned over threads.

#include "workloads/kernels.hpp"

#include "workloads/kernel_util.hpp"

namespace occm::workloads {

namespace {

struct FtParams {
  std::uint64_t grid = 0;  ///< G: grid is G^3 complex points
  int iterations = 6;
  Cycles workLine = 40;    ///< butterflies on the 4 points of one line
  Cycles workPoint = 40;   ///< strided passes: butterflies per point
};

/// NPB FT: 64^3 (S) .. 512^3 (C); scaled 32x in footprint (~3.2x per side).
FtParams paramsFor(ProblemClass cls) {
  FtParams p;
  switch (cls) {
    case ProblemClass::kS:
      p.grid = 16;
      break;
    case ProblemClass::kW:
      p.grid = 24;
      break;
    case ProblemClass::kA:
      p.grid = 32;
      break;
    case ProblemClass::kB:
      p.grid = 48;
      break;
    case ProblemClass::kC:
      p.grid = 64;
      break;
    default:
      OCCM_REQUIRE_MSG(false, "FT takes NPB letter classes");
  }
  return p;
}

}  // namespace

KernelBuild buildFt(ProblemClass cls, int threads, std::uint64_t seed) {
  OCCM_REQUIRE(threads >= 1);
  (void)seed;  // FT's access pattern is fully structural
  const FtParams p = paramsFor(cls);
  const std::uint64_t g = p.grid;
  const std::uint64_t points = g * g * g;
  constexpr Bytes kPoint = 16;  // complex<double>

  trace::AddressSpace space;
  const Addr grid = space.allocShared(points * kPoint);

  KernelBuild build;
  build.sharedBytes = space.sharedBytes();
  build.sizeDescription = std::to_string(g) + "^3 complex grid (scaled from NPB " +
                          problemClassName(cls) + ")";
  build.threadPhases.resize(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    auto& phases = build.threadPhases[static_cast<std::size_t>(t)];
    const Range slab = threadRange(points, threads, t);       // x pass
    const Range pencils = threadRange(g * g, threads, t);     // y/z passes
    for (int iter = 0; iter < p.iterations; ++iter) {
      // x pass: unit stride over the thread's slab, in place.
      phases.push_back(seqLines(grid + slab.begin * kPoint,
                                slab.size() * kPoint, p.workLine,
                                /*write=*/true));
      // y pass: pencil (x, z) varies y; consecutive points one row apart.
      for (std::uint64_t pc = pencils.begin; pc < pencils.end; ++pc) {
        const std::uint64_t x = pc % g;
        const std::uint64_t z = pc / g;
        Phase pencil;
        pencil.kind = Phase::Kind::kStrided;
        pencil.base = grid + (z * g * g + x) * kPoint;
        pencil.count = g;
        pencil.strideBytes = static_cast<std::int64_t>(g * kPoint);
        pencil.workPerOp = p.workPoint;
        pencil.write = true;
        pencil.prefetchable = true;
        phases.push_back(pencil);
      }
      // z pass: pencil (x, y) varies z; consecutive points one plane apart.
      for (std::uint64_t pc = pencils.begin; pc < pencils.end; ++pc) {
        const std::uint64_t x = pc % g;
        const std::uint64_t y = pc / g;
        Phase pencil;
        pencil.kind = Phase::Kind::kStrided;
        pencil.base = grid + (y * g + x) * kPoint;
        pencil.count = g;
        pencil.strideBytes = static_cast<std::int64_t>(g * g * kPoint);
        pencil.workPerOp = p.workPoint;
        pencil.write = true;
        pencil.prefetchable = true;
        phases.push_back(pencil);
      }
    }
  }
  return build;
}

}  // namespace occm::workloads
