// x264 — H.264 video encoding (PARSEC). Frames are distributed round-
// robin over threads. Per frame: a streaming load of the input frame (the
// off-chip burst that dominates x264's memory traffic), a motion-
// estimation phase of gathers inside a small cache-resident search window
// per macroblock row (compute heavy, mostly L1/L2 hits), and a streaming
// write of the encoded output. Frame buffers are a ring of three shared
// frames plus an output ring.

#include "workloads/kernels.hpp"

#include "workloads/kernel_util.hpp"

namespace occm::workloads {

namespace {

struct X264Params {
  std::uint64_t frames = 0;
  std::uint64_t width = 0;
  std::uint64_t height = 0;
  Cycles workLoadLine = 30;    ///< per input line: filtering/prediction
  Cycles workSearch = 20;      ///< per SAD probe in the search window
  Cycles workOutLine = 12;
  std::uint32_t probesPerMacroblock = 40;
};

/// PARSEC inputs (paper Table III): 8/32/128 frames at 640x360 and 512
/// frames at 1920x1080, scaled 32x in pixel footprint (4x per side).
X264Params paramsFor(ProblemClass cls) {
  X264Params p;
  switch (cls) {
    case ProblemClass::kSimSmall:
      p.frames = 8;
      p.width = 160;
      p.height = 90;
      break;
    case ProblemClass::kSimMedium:
      p.frames = 32;
      p.width = 160;
      p.height = 90;
      break;
    case ProblemClass::kSimLarge:
      p.frames = 128;
      p.width = 160;
      p.height = 90;
      break;
    case ProblemClass::kNative:
      p.frames = 512;
      p.width = 480;
      p.height = 270;
      break;
    default:
      OCCM_REQUIRE_MSG(false, "x264 takes PARSEC input sizes");
  }
  return p;
}

}  // namespace

KernelBuild buildX264(ProblemClass cls, int threads, std::uint64_t seed) {
  OCCM_REQUIRE(threads >= 1);
  const X264Params p = paramsFor(cls);
  const Bytes frameBytes = p.width * p.height;  // 8-bit luma

  trace::AddressSpace space;
  const Addr frameRing = space.allocShared(3 * frameBytes);
  const Addr outRing = space.allocShared(4 * frameBytes / 2);

  KernelBuild build;
  build.sharedBytes = space.sharedBytes();
  build.sizeDescription =
      std::to_string(p.frames) + " frames at " + std::to_string(p.width) +
      "x" + std::to_string(p.height) + " (scaled from PARSEC " +
      problemClassName(cls) + ")";
  build.threadPhases.resize(static_cast<std::size_t>(threads));

  const std::uint64_t mbRows = p.height / 16;
  const std::uint64_t mbCols = p.width / 16;

  for (std::uint64_t frame = 0; frame < p.frames; ++frame) {
    const int t = static_cast<int>(frame % static_cast<std::uint64_t>(threads));
    auto& phases = build.threadPhases[static_cast<std::size_t>(t)];
    const Addr cur = frameRing + (frame % 3) * frameBytes;
    const Addr ref = frameRing + ((frame + 2) % 3) * frameBytes;
    // Streaming load of the input frame: x264's off-chip burst.
    phases.push_back(seqLines(cur, frameBytes, p.workLoadLine, /*write=*/true));
    // GOP structure: every 8th frame is an I-frame — no motion search,
    // a compute-heavy intra pass instead (burstier aggregate traffic).
    if (frame % 8 == 0) {
      phases.push_back(seqLines(cur, frameBytes, 4 * p.workLoadLine));
      phases.push_back(seqLines(outRing + (frame % 4) * (frameBytes / 2),
                                frameBytes / 2, p.workOutLine,
                                /*write=*/true));
      continue;
    }
    // Motion estimation: per macroblock row, SAD probes inside a search
    // window of +/-16 rows of the reference frame (cache resident).
    for (std::uint64_t row = 0; row < mbRows; ++row) {
      Phase search;
      search.kind = Phase::Kind::kGather;
      // Clamp the window so it stays inside the reference frame.
      const std::uint64_t windowTop = std::min(row * 16, p.height - 48);
      search.base = ref + windowTop * p.width;
      search.tableBytes = p.width * 48;  // 48 reference rows
      search.elementBytes = 16;
      search.count = mbCols * p.probesPerMacroblock;
      search.workPerOp = p.workSearch;
      search.seed = hashSeed(seed, frame, row);
      phases.push_back(search);
    }
    // Encoded output write.
    phases.push_back(seqLines(outRing + (frame % 4) * (frameBytes / 2),
                              frameBytes / 2, p.workOutLine, /*write=*/true));
  }
  return build;
}

}  // namespace occm::workloads
