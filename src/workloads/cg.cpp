// CG — conjugate gradient on a random sparse matrix (NPB CG).
//
// Per iteration the dominant loop is the sparse mat-vec q = A*p:
//   for each row i: for k in rowptr[i]..rowptr[i+1]:
//     q[i] += a[k] * p[colidx[k]]
// i.e. a streamed read of the matrix (values + column indices) interleaved
// with gathers into the iterate vector p, followed by vector updates
// (axpy/dot) and an OpenMP-reduction write to a shared partial-sum line.
//
// Matrix rows are block-partitioned over threads; the gather index
// sequence is a pure function of (thread, chunk), so every CG iteration
// revisits the same elements — the fixed sparse pattern of the real code.

#include "workloads/kernels.hpp"

#include "workloads/kernel_util.hpp"

namespace occm::workloads {

namespace {

struct CgParams {
  std::uint64_t rows = 0;
  std::uint32_t nnzPerRow = 6;   ///< thinned at 32x scale
  /// Small classes iterate more (as NPB does), which also gives the 5 us
  /// sampler a long enough steady state to measure burstiness.
  int iterations = 6;
  Cycles workMatrixLine = 40;  ///< ~5 nonzeros per 64 B line, 2 flops each
  Cycles workGather = 8;
  Cycles workVector = 30;
  Cycles workReduce = 30;
};

/// Paper Table III: CG matrices of 1,400^2 (S) .. 150,000^2 (C) elements;
/// scaled 32x alongside the machine caches (DESIGN.md).
CgParams paramsFor(ProblemClass cls) {
  CgParams p;
  switch (cls) {
    case ProblemClass::kS:
      p.rows = 1'000;
      p.iterations = 150;
      break;
    case ProblemClass::kW:
      p.rows = 2'500;
      p.iterations = 80;
      break;
    case ProblemClass::kA:
      p.rows = 8'000;
      p.iterations = 30;
      break;
    case ProblemClass::kB:
      p.rows = 60'000;
      p.iterations = 10;
      break;
    case ProblemClass::kC:
      p.rows = 120'000;
      p.iterations = 6;
      break;
    default:
      OCCM_REQUIRE_MSG(false, "CG takes NPB letter classes");
  }
  return p;
}

}  // namespace

KernelBuild buildCg(ProblemClass cls, int threads, std::uint64_t seed) {
  OCCM_REQUIRE(threads >= 1);
  const CgParams p = paramsFor(cls);
  const std::uint64_t nnz = p.rows * p.nnzPerRow;

  trace::AddressSpace space;
  // colidx (4 B) + value (8 B) stored as one streamed 12 B-per-nonzero blob.
  const Addr matrix = space.allocShared(nnz * 12);
  const Addr pVec = space.allocShared(p.rows * 8);
  const Addr qVec = space.allocShared(p.rows * 8);
  const Addr rVec = space.allocShared(p.rows * 8);
  const Addr zVec = space.allocShared(p.rows * 8);
  const Addr xVec = space.allocShared(p.rows * 8);
  const Addr partials = space.allocShared(static_cast<Bytes>(threads) * 8);

  constexpr std::uint64_t kChunkRows = 256;

  KernelBuild build;
  build.sharedBytes = space.sharedBytes();
  build.sizeDescription =
      "sparse matrix " + std::to_string(p.rows) + "^2, " +
      std::to_string(p.nnzPerRow) + " nnz/row (scaled from NPB " +
      problemClassName(cls) + ")";
  build.threadPhases.resize(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    const Range rows = threadRange(p.rows, threads, t);
    auto& phases = build.threadPhases[static_cast<std::size_t>(t)];
    for (int iter = 0; iter < p.iterations; ++iter) {
      // Sparse mat-vec, chunked so matrix streaming and vector gathers
      // interleave in time as in the real row loop.
      std::uint64_t chunkIdx = 0;
      for (std::uint64_t row = rows.begin; row < rows.end;
           row += kChunkRows, ++chunkIdx) {
        const std::uint64_t chunkRows = std::min(kChunkRows, rows.end - row);
        const std::uint64_t chunkNnz = chunkRows * p.nnzPerRow;
        phases.push_back(
            seqLines(matrix + row * p.nnzPerRow * 12, chunkNnz * 12,
                     p.workMatrixLine));
        Phase gather;
        gather.kind = Phase::Kind::kGather;
        gather.base = pVec;
        gather.tableBytes = p.rows * 8;
        gather.elementBytes = 8;
        gather.count = chunkNnz;
        gather.workPerOp = p.workGather;
        // Seeded by (thread, chunk) only: iterations reuse the pattern.
        gather.seed = hashSeed(seed, static_cast<std::uint64_t>(t) << 32,
                               chunkIdx);
        phases.push_back(gather);
      }
      // q[i] accumulation writes.
      phases.push_back(
          seqLines(qVec + rows.begin * 8, rows.size() * 8, p.workVector,
                   /*write=*/true));
      // Vector updates: r = r - alpha q; z = z + alpha p; rho = r.r etc.
      phases.push_back(seqLines(rVec + rows.begin * 8, rows.size() * 8,
                                p.workVector, /*write=*/true));
      phases.push_back(seqLines(zVec + rows.begin * 8, rows.size() * 8,
                                p.workVector, /*write=*/true));
      phases.push_back(seqLines(xVec + rows.begin * 8, rows.size() * 8,
                                p.workVector, /*write=*/false));
      // OpenMP reduction: each thread writes its slot of the shared
      // partial-sum array (false sharing across 8 slots per line).
      Phase reduce;
      reduce.kind = Phase::Kind::kStrided;
      reduce.base = partials + static_cast<Addr>(t) * 8;
      reduce.count = 2;
      reduce.strideBytes = 0;
      reduce.workPerOp = p.workReduce;
      reduce.write = true;
      phases.push_back(reduce);
    }
  }
  return build;
}

}  // namespace occm::workloads
