// IS — integer bucket sort (NPB IS). Each ranking iteration scans the key
// array sequentially, counts keys into a small private bucket table, and
// then writes keys to their ranked positions in the shared output array.
//
// The permutation-write phase has partial locality on real hardware (each
// bucket's region is written through a moving cursor), so it is modelled
// as pseudo-random *line* writes at one-eighth of the key rate rather
// than one random write per key; the bucket counting is L1-resident.

#include "workloads/kernels.hpp"

#include "workloads/kernel_util.hpp"

namespace occm::workloads {

namespace {

struct IsParams {
  std::uint64_t keys = 0;
  int iterations = 10;  ///< NPB IS performs 10 ranking iterations
  Bytes bucketBytes = 4 * kKiB;
  Cycles workKeyLine = 200;   ///< 16 keys per line, ~3 cycles each
  Cycles workBucket = 40;
  Cycles workScatter = 240;   ///< rank lookup + cursor bump per line
};

/// NPB IS: 2^16 (S) .. 2^27 (C) keys, scaled 32x.
IsParams paramsFor(ProblemClass cls) {
  IsParams p;
  switch (cls) {
    case ProblemClass::kS:
      p.keys = 8'192;
      break;
    case ProblemClass::kW:
      p.keys = 32'768;
      break;
    case ProblemClass::kA:
      p.keys = 131'072;
      break;
    case ProblemClass::kB:
      p.keys = 300'000;
      break;
    case ProblemClass::kC:
      p.keys = 600'000;
      break;
    default:
      OCCM_REQUIRE_MSG(false, "IS takes NPB letter classes");
  }
  return p;
}

}  // namespace

KernelBuild buildIs(ProblemClass cls, int threads, std::uint64_t seed) {
  OCCM_REQUIRE(threads >= 1);
  const IsParams p = paramsFor(cls);

  trace::AddressSpace space;
  const Addr keys = space.allocShared(p.keys * 4);
  const Addr out = space.allocShared(p.keys * 4);

  KernelBuild build;
  build.sizeDescription = std::to_string(p.keys) +
                          " integer keys (scaled from NPB " +
                          problemClassName(cls) + ")";
  build.threadPhases.resize(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    const Range range = threadRange(p.keys, threads, t);
    const Addr buckets = space.allocPrivate(t, p.bucketBytes);
    auto& phases = build.threadPhases[static_cast<std::size_t>(t)];
    for (int iter = 0; iter < p.iterations; ++iter) {
      // Count phase: sequential key scan + private bucket increments.
      phases.push_back(
          seqLines(keys + range.begin * 4, range.size() * 4, p.workKeyLine));
      Phase count;
      count.kind = Phase::Kind::kGather;
      count.base = buckets;
      count.tableBytes = p.bucketBytes;
      count.elementBytes = 4;
      count.count = range.size() / 16;
      count.workPerOp = p.workBucket;
      count.write = true;
      count.seed = hashSeed(seed, static_cast<std::uint64_t>(t), 1);
      phases.push_back(count);
      // Rank/permute phase: re-read keys, write ranked lines of `out`.
      phases.push_back(
          seqLines(keys + range.begin * 4, range.size() * 4, p.workKeyLine));
      Phase scatter;
      scatter.kind = Phase::Kind::kGather;
      scatter.base = out;
      scatter.tableBytes = p.keys * 4;
      scatter.elementBytes = 64;  // line-granular cursor writes
      scatter.count = range.size() / 16;
      scatter.workPerOp = p.workScatter;
      scatter.write = true;
      scatter.prefetchable = true;  // bucket cursors advance sequentially

      // Same keys every iteration -> same destinations: seed excludes iter.
      scatter.seed = hashSeed(seed, static_cast<std::uint64_t>(t), 2);
      phases.push_back(scatter);
    }
  }
  build.sharedBytes = space.sharedBytes();
  return build;
}

}  // namespace occm::workloads
