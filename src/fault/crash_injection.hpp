#pragma once

// Execution side of the FaultPlan crash kinds (kCrashAbort / kCrashSegv /
// kCrashOom): deterministic hard process death at a scripted simulated
// cycle. The simulator calls executeInjectedCrash at its event-loop
// boundary — the same deterministic point budgets and cancellation use —
// so the same plan kills the same run at the same event on every machine,
// seed and pool size.
//
// These crashes are only survivable under process isolation
// (exec::runInChild): the supervisor decodes the death into a structured
// RunFailure{kind = crash} while the rest of the sweep continues. Running
// a crash plan in-process kills the whole harness, which is why
// analysis::runSweep refuses crash plans without isolation enabled.

#include "common/types.hpp"
#include "fault/fault_plan.hpp"

namespace occm::fault {

/// Marker written to stderr before an injected (or budget-triggered) OOM
/// abort; the supervisor matches it to classify the crash as an
/// address-space rlimit hit rather than a plain SIGABRT.
inline constexpr char kOutOfMemoryMarker[] =
    "memory budget (RLIMIT_AS) exceeded";

/// Kills the current process in the way `kind` prescribes, after writing
/// a one-line diagnostic (with the cycle) to stderr. Requires
/// isCrashKind(kind). Never returns: abort raises SIGABRT, segv dies on a
/// null store, and oom allocates until the address-space budget ends the
/// process (or aborts with kOutOfMemoryMarker when allocation fails).
[[noreturn]] void executeInjectedCrash(FaultKind kind, Cycles atCycle);

}  // namespace occm::fault
