#include "fault/crash_injection.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/error.hpp"

namespace occm::fault {

namespace {

// The null store goes through a volatile global so no compiler can prove
// the dereference and "optimize" the crash into something else.
volatile std::uintptr_t gCrashAddress = 0;

}  // namespace

void executeInjectedCrash(FaultKind kind, Cycles atCycle) {
  OCCM_REQUIRE_MSG(isCrashKind(kind), "not a crash-injection fault kind");
  std::fprintf(stderr, "occm: injected crash (%s) at simulated cycle %llu\n",
               toString(kind),
               static_cast<unsigned long long>(atCycle));
  std::fflush(stderr);
  switch (kind) {
    case FaultKind::kCrashSegv: {
      auto* target = reinterpret_cast<volatile int*>(gCrashAddress);
      *target = 42;  // SIGSEGV (or a sanitizer's report-and-exit)
      break;
    }
    case FaultKind::kCrashOom: {
      // Touch every page so the allocation really consumes address space
      // and commit; under an RLIMIT_AS budget operator new eventually
      // fails and the catch below turns it into a marked abort.
      try {
        std::vector<char*> hoard;
        constexpr std::size_t kChunk = std::size_t{8} << 20;
        for (;;) {
          char* chunk = new char[kChunk];
          std::memset(chunk, 0x5A, kChunk);
          hoard.push_back(chunk);
        }
      } catch (const std::bad_alloc&) {
        std::fprintf(stderr, "occm: injected oom: %s\n", kOutOfMemoryMarker);
        std::fflush(stderr);
      }
      break;
    }
    case FaultKind::kCrashAbort:
    default:
      break;
  }
  // kCrashAbort lands here directly; the other kinds only reach it when
  // their primary mechanism was absorbed (sanitizer handlers, no rlimit).
  std::abort();
}

}  // namespace occm::fault
