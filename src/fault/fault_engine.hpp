#pragma once

// Runtime driver of a FaultPlan for one simulated run.
//
// The engine compiles the plan into (a) a sorted list of controller
// health transitions, (b) a pre-generated, sorted stream of background
// traffic injections (addresses drawn from a seed-derived substream so
// the whole scenario is reproducible), and (c) per-core throttle windows.
// The simulator calls advanceTo(now, memory) before presenting each
// memory request — applying every transition and injection scheduled at
// or before `now`, in time order, which preserves the memory system's
// monotonic-time contract — and throttleExtra() per executed operation
// on cores that have windows. A default (empty) plan compiles to an idle
// engine the simulator skips with one null-pointer test.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "mem/memory_system.hpp"
#include "topology/topology_map.hpp"

namespace occm::fault {

class FaultEngine {
 public:
  /// Validates the plan against the machine (targets in range, outages
  /// never cover every active controller) and compiles the schedule.
  FaultEngine(const FaultPlan& plan, const topology::TopologyMap& topo,
              std::span<const NodeId> activeNodes, std::uint64_t seed);

  /// True when the plan schedules nothing at all.
  [[nodiscard]] bool idle() const noexcept {
    return transitions_.empty() && injections_.empty() && !anyThrottle_;
  }

  /// Applies every controller health transition and background injection
  /// scheduled at or before `now`, in time order. `now` must be
  /// nondecreasing across calls (the simulator's event loop guarantees
  /// it, same as for MemorySystem::request).
  void advanceTo(Cycles now, mem::MemorySystem& memory);

  /// Whether `core` has any throttle window (cheap pre-filter so
  /// unthrottled cores pay one branch per operation).
  [[nodiscard]] bool coreThrottled(CoreId core) const noexcept {
    return static_cast<std::size_t>(core) < throttles_.size() &&
           !throttles_[static_cast<std::size_t>(core)].windows.empty();
  }

  /// Extra stall cycles a throttled core pays to execute `work` cycles
  /// starting at `now` (its own monotonic clock). Zero outside windows.
  [[nodiscard]] Cycles throttleExtra(CoreId core, Cycles now, Cycles work);

  /// Total extra cycles injected by throttle windows so far.
  [[nodiscard]] Cycles throttledCycles() const noexcept {
    return throttledCycles_;
  }
  /// Background transfers actually injected so far (dropped ones —
  /// controller down — still count as issued by the scenario).
  [[nodiscard]] std::uint64_t backgroundIssued() const noexcept {
    return backgroundIssued_;
  }

 private:
  enum class TransitionKind : std::uint8_t {
    kDown,
    kUp,
    kServiceScale,
    kEcc,
  };
  struct Transition {
    Cycles time = 0;
    TransitionKind kind = TransitionKind::kDown;
    NodeId node = 0;
    double value = 1.0;     ///< service scale or ECC probability
    Cycles penalty = 0;     ///< ECC retry latency
  };
  struct Injection {
    Cycles time = 0;
    NodeId node = 0;
    Addr addr = 0;
  };
  struct ThrottleWindow {
    Cycles start = 0;
    Cycles end = 0;
    double slowdown = 1.0;
  };
  struct CoreThrottles {
    std::vector<ThrottleWindow> windows;  ///< sorted by start
    std::size_t cursor = 0;               ///< first window not yet passed
  };

  std::vector<Transition> transitions_;  ///< sorted by (time, node, kind)
  std::size_t transitionCursor_ = 0;
  std::vector<Injection> injections_;    ///< sorted by time
  std::size_t injectionCursor_ = 0;
  std::vector<CoreThrottles> throttles_;  ///< indexed by CoreId
  bool anyThrottle_ = false;
  Cycles throttledCycles_ = 0;
  std::uint64_t backgroundIssued_ = 0;
};

}  // namespace occm::fault
