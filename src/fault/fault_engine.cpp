#include "fault/fault_engine.hpp"

#include <algorithm>
#include <tuple>

#include "common/error.hpp"

namespace occm::fault {

namespace {

/// Hard cap on pre-generated background injections: a plan asking for
/// more is almost certainly a misconfigured period.
constexpr std::size_t kMaxInjections = std::size_t{1} << 22;

}  // namespace

FaultEngine::FaultEngine(const FaultPlan& plan,
                         const topology::TopologyMap& topo,
                         std::span<const NodeId> activeNodes,
                         std::uint64_t seed) {
  plan.validate(topo.spec().controllers(), topo.spec().logicalCores(),
                activeNodes);
  throttles_.resize(static_cast<std::size_t>(topo.spec().logicalCores()));

  Rng rng = Rng::substream(seed, 0xFA17B17ULL);
  for (const FaultEvent& e : plan.events()) {
    switch (e.kind) {
      case FaultKind::kControllerOutage:
        transitions_.push_back(
            {e.start, TransitionKind::kDown, e.target, 1.0, 0});
        transitions_.push_back({e.end, TransitionKind::kUp, e.target, 1.0, 0});
        break;
      case FaultKind::kControllerDegrade:
        transitions_.push_back(
            {e.start, TransitionKind::kServiceScale, e.target, e.magnitude, 0});
        transitions_.push_back(
            {e.end, TransitionKind::kServiceScale, e.target, 1.0, 0});
        break;
      case FaultKind::kEccSpike:
        transitions_.push_back({e.start, TransitionKind::kEcc, e.target,
                                e.magnitude, e.penaltyCycles});
        transitions_.push_back({e.end, TransitionKind::kEcc, e.target, 0.0, 0});
        break;
      case FaultKind::kCoreThrottle:
        throttles_[static_cast<std::size_t>(e.target)].windows.push_back(
            {e.start, e.end, e.magnitude});
        anyThrottle_ = true;
        break;
      case FaultKind::kBackgroundTraffic: {
        OCCM_REQUIRE_MSG(
            (e.end - e.start) / e.period + injections_.size() < kMaxInjections,
            "background traffic plan generates too many injections");
        for (Cycles t = e.start; t < e.end; t += e.period) {
          // Scattered 64 B-aligned addresses: row-cycle-limited traffic
          // that evicts the demand streams' open rows.
          injections_.push_back({t, e.target, rng.below(Addr{1} << 30) & ~Addr{63}});
        }
        break;
      }
      case FaultKind::kCrashAbort:
      case FaultKind::kCrashSegv:
      case FaultKind::kCrashOom:
        // Crash injections kill the run *process*, not the memory system;
        // MachineSim executes them directly at its event-loop boundary.
        break;
    }
  }

  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& a, const Transition& b) {
              return std::tie(a.time, a.node, a.kind) <
                     std::tie(b.time, b.node, b.kind);
            });
  std::sort(injections_.begin(), injections_.end(),
            [](const Injection& a, const Injection& b) {
              return std::tie(a.time, a.node, a.addr) <
                     std::tie(b.time, b.node, b.addr);
            });
  for (CoreThrottles& core : throttles_) {
    std::sort(core.windows.begin(), core.windows.end(),
              [](const ThrottleWindow& a, const ThrottleWindow& b) {
                return a.start < b.start;
              });
  }
}

void FaultEngine::advanceTo(Cycles now, mem::MemorySystem& memory) {
  // Merge-walk transitions and injections so a transfer scheduled during
  // an outage really sees the controller down (transitions win ties).
  while (transitionCursor_ < transitions_.size() ||
         injectionCursor_ < injections_.size()) {
    const bool haveTransition = transitionCursor_ < transitions_.size() &&
                                transitions_[transitionCursor_].time <= now;
    const bool haveInjection = injectionCursor_ < injections_.size() &&
                               injections_[injectionCursor_].time <= now;
    if (!haveTransition && !haveInjection) {
      break;
    }
    const bool transitionFirst =
        haveTransition &&
        (!haveInjection || transitions_[transitionCursor_].time <=
                               injections_[injectionCursor_].time);
    if (transitionFirst) {
      const Transition& t = transitions_[transitionCursor_++];
      switch (t.kind) {
        case TransitionKind::kDown:
          memory.setControllerUp(t.node, false);
          break;
        case TransitionKind::kUp:
          memory.setControllerUp(t.node, true);
          break;
        case TransitionKind::kServiceScale:
          memory.setControllerServiceScale(t.node, t.value);
          break;
        case TransitionKind::kEcc:
          memory.setControllerEcc(t.node, t.value, t.penalty);
          break;
      }
    } else {
      const Injection& inj = injections_[injectionCursor_++];
      memory.injectBackground(inj.time, inj.node, inj.addr);
      ++backgroundIssued_;
    }
  }
}

Cycles FaultEngine::throttleExtra(CoreId core, Cycles now, Cycles work) {
  CoreThrottles& state = throttles_[static_cast<std::size_t>(core)];
  while (state.cursor < state.windows.size() &&
         state.windows[state.cursor].end <= now) {
    ++state.cursor;
  }
  if (state.cursor >= state.windows.size()) {
    return 0;
  }
  const ThrottleWindow& window = state.windows[state.cursor];
  if (now < window.start) {
    return 0;
  }
  const auto extra = static_cast<Cycles>(
      static_cast<double>(work) * (window.slowdown - 1.0) + 0.5);
  throttledCycles_ += extra;
  return extra;
}

}  // namespace occm::fault
