#include "fault/fault_plan.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace occm::fault {

namespace {

void requireWindow(Cycles start, Cycles end) {
  OCCM_REQUIRE_MSG(start < end, "fault window must satisfy start < end");
}

}  // namespace

FaultPlan& FaultPlan::controllerOutage(NodeId node, Cycles start, Cycles end) {
  requireWindow(start, end);
  OCCM_REQUIRE_MSG(node >= 0, "controller id must be >= 0");
  events_.push_back({FaultKind::kControllerOutage, node, start, end, 1.0, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::controllerDegrade(NodeId node, Cycles start, Cycles end,
                                        double serviceScale) {
  requireWindow(start, end);
  OCCM_REQUIRE_MSG(node >= 0, "controller id must be >= 0");
  OCCM_REQUIRE_MSG(serviceScale >= 1.0, "degrade scale must be >= 1");
  events_.push_back(
      {FaultKind::kControllerDegrade, node, start, end, serviceScale, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::coreThrottle(CoreId core, Cycles start, Cycles end,
                                   double slowdown) {
  requireWindow(start, end);
  OCCM_REQUIRE_MSG(core >= 0, "core id must be >= 0");
  OCCM_REQUIRE_MSG(slowdown >= 1.0, "throttle slowdown must be >= 1");
  events_.push_back(
      {FaultKind::kCoreThrottle, core, start, end, slowdown, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::eccSpike(NodeId node, Cycles start, Cycles end,
                               double probability, Cycles penalty) {
  requireWindow(start, end);
  OCCM_REQUIRE_MSG(node >= 0, "controller id must be >= 0");
  OCCM_REQUIRE_MSG(probability > 0.0 && probability <= 1.0,
                   "ECC probability must be in (0, 1]");
  OCCM_REQUIRE_MSG(penalty > 0, "ECC penalty must be positive");
  events_.push_back(
      {FaultKind::kEccSpike, node, start, end, probability, penalty, 0});
  return *this;
}

FaultPlan& FaultPlan::backgroundTraffic(NodeId node, Cycles start, Cycles end,
                                        Cycles period) {
  requireWindow(start, end);
  OCCM_REQUIRE_MSG(node >= 0, "controller id must be >= 0");
  OCCM_REQUIRE_MSG(period > 0, "background traffic period must be positive");
  events_.push_back(
      {FaultKind::kBackgroundTraffic, node, start, end, 1.0, 0, period});
  return *this;
}

FaultPlan& FaultPlan::crashAbort(Cycles atCycle, int activeCores) {
  OCCM_REQUIRE_MSG(activeCores >= 0,
                   "crash active-core filter must be >= 0 (0 = every run)");
  events_.push_back(
      {FaultKind::kCrashAbort, activeCores, atCycle, atCycle + 1, 1.0, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::crashSegv(Cycles atCycle, int activeCores) {
  OCCM_REQUIRE_MSG(activeCores >= 0,
                   "crash active-core filter must be >= 0 (0 = every run)");
  events_.push_back(
      {FaultKind::kCrashSegv, activeCores, atCycle, atCycle + 1, 1.0, 0, 0});
  return *this;
}

FaultPlan& FaultPlan::crashOom(Cycles atCycle, int activeCores) {
  OCCM_REQUIRE_MSG(activeCores >= 0,
                   "crash active-core filter must be >= 0 (0 = every run)");
  events_.push_back(
      {FaultKind::kCrashOom, activeCores, atCycle, atCycle + 1, 1.0, 0, 0});
  return *this;
}

bool FaultPlan::hasCrash() const noexcept {
  for (const FaultEvent& e : events_) {
    if (isCrashKind(e.kind)) {
      return true;
    }
  }
  return false;
}

const FaultEvent* FaultPlan::firstCrash(int activeCores) const noexcept {
  const FaultEvent* best = nullptr;
  for (const FaultEvent& e : events_) {
    if (!isCrashKind(e.kind)) {
      continue;
    }
    if (e.target != 0 && e.target != activeCores) {
      continue;
    }
    if (best == nullptr || e.start < best->start) {
      best = &e;
    }
  }
  return best;
}

void FaultPlan::validate(int controllers, int cores,
                         std::span<const NodeId> activeNodes) const {
  for (const FaultEvent& e : events_) {
    if (isCrashKind(e.kind)) {
      // A crash event's target is an active-core-count filter, not a
      // machine resource — nothing machine-dependent to check.
      continue;
    }
    const bool coreFault = e.kind == FaultKind::kCoreThrottle;
    const std::int32_t limit = coreFault ? cores : controllers;
    OCCM_REQUIRE_MSG(e.target < limit,
                     std::string(toString(e.kind)) + " targets " +
                         (coreFault ? "core " : "controller ") +
                         std::to_string(e.target) + " but the machine has " +
                         std::to_string(limit));
  }

  // Outages must leave at least one active controller healthy at every
  // instant: merge each active node's outage intervals, then sweep the
  // union's boundaries counting simultaneously-down nodes.
  std::vector<std::pair<Cycles, int>> boundaries;  // (time, +1/-1)
  for (NodeId node : activeNodes) {
    std::vector<std::pair<Cycles, Cycles>> windows;
    for (const FaultEvent& e : events_) {
      if (e.kind == FaultKind::kControllerOutage && e.target == node) {
        windows.emplace_back(e.start, e.end);
      }
    }
    if (windows.empty()) {
      continue;
    }
    std::sort(windows.begin(), windows.end());
    Cycles start = windows.front().first;
    Cycles end = windows.front().second;
    for (std::size_t i = 1; i < windows.size(); ++i) {
      if (windows[i].first <= end) {
        end = std::max(end, windows[i].second);
      } else {
        boundaries.emplace_back(start, +1);
        boundaries.emplace_back(end, -1);
        start = windows[i].first;
        end = windows[i].second;
      }
    }
    boundaries.emplace_back(start, +1);
    boundaries.emplace_back(end, -1);
  }
  std::sort(boundaries.begin(), boundaries.end());
  int down = 0;
  for (const auto& [time, delta] : boundaries) {
    down += delta;
    OCCM_REQUIRE_MSG(
        down < static_cast<int>(activeNodes.size()) || activeNodes.empty(),
        "outage plan takes down all " + std::to_string(activeNodes.size()) +
            " active controllers at cycle " + std::to_string(time) +
            "; at least one must stay healthy");
  }
}

}  // namespace occm::fault
