#pragma once

// Deterministic fault scenarios scripted against simulated time.
//
// A FaultPlan is a declarative list of fault windows a run should suffer:
// memory-controller outages (requests reroute to surviving controllers
// with a bounded retry-with-backoff penalty), controller degradation
// (channel service slowed by a scale factor), thermal throttle windows on
// cores, transient ECC-retry latency spikes, and interfering background
// traffic bursts aimed at one controller. The plan itself is pure data —
// fault::FaultEngine turns it into health transitions and injections
// against mem::MemorySystem, and sim::MachineSim applies the core-local
// throttle windows. Everything is reproducible from SimConfig::seed:
// identical plan + seed gives bit-identical RunProfile counters.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace occm::fault {

enum class FaultKind : std::uint8_t {
  kControllerOutage,   ///< controller down; demand traffic fails over
  kControllerDegrade,  ///< channel occupancy scaled (slower service rate)
  kCoreThrottle,       ///< thermal throttle: core work cycles stretched
  kEccSpike,           ///< probabilistic ECC-retry latency added per request
  kBackgroundTraffic,  ///< periodic interfering transfers at one controller
};

[[nodiscard]] constexpr const char* toString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kControllerOutage: return "controller-outage";
    case FaultKind::kControllerDegrade: return "controller-degrade";
    case FaultKind::kCoreThrottle: return "core-throttle";
    case FaultKind::kEccSpike: return "ecc-spike";
    case FaultKind::kBackgroundTraffic: return "background-traffic";
  }
  return "unknown";
}

/// One scripted fault window [start, end) in simulated cycles.
struct FaultEvent {
  FaultKind kind = FaultKind::kControllerOutage;
  /// NodeId for controller faults, CoreId for throttle windows.
  std::int32_t target = 0;
  Cycles start = 0;
  Cycles end = 0;
  /// Service scale (degrade, >= 1), slowdown factor (throttle, >= 1) or
  /// ECC-retry probability (spike, in (0, 1]); unused otherwise.
  double magnitude = 1.0;
  /// Latency added per ECC retry; unused otherwise.
  Cycles penaltyCycles = 0;
  /// Inter-arrival of background transfers; unused otherwise.
  Cycles period = 0;
};

class FaultPlan {
 public:
  /// Controller `node` serves nothing in [start, end); demand requests
  /// pay the bounded retry/backoff penalty and reroute to the nearest
  /// healthy controller.
  FaultPlan& controllerOutage(NodeId node, Cycles start, Cycles end);

  /// Controller `node`'s channel occupancy is multiplied by
  /// `serviceScale` (>= 1) in [start, end).
  FaultPlan& controllerDegrade(NodeId node, Cycles start, Cycles end,
                               double serviceScale);

  /// Core `core` retires `slowdown`x (>= 1) slower in [start, end); the
  /// stretch is accounted as stall cycles (the core is not retiring).
  FaultPlan& coreThrottle(CoreId core, Cycles start, Cycles end,
                          double slowdown);

  /// Each request served by `node` in [start, end) suffers an extra
  /// `penalty`-cycle ECC retry with probability `probability`.
  FaultPlan& eccSpike(NodeId node, Cycles start, Cycles end,
                      double probability, Cycles penalty);

  /// Injects one interfering transfer at `node` every `period` cycles in
  /// [start, end) (scattered addresses: row-cycle-limited traffic).
  FaultPlan& backgroundTraffic(NodeId node, Cycles start, Cycles end,
                               Cycles period);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Machine-dependent validation: targets in range, and controller
  /// outages never cover every active controller at once (the memory
  /// system needs at least one healthy controller to fail over to).
  /// Throws ContractViolation with the offending event in the message.
  void validate(int controllers, int cores,
                std::span<const NodeId> activeNodes) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace occm::fault
