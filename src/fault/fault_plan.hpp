#pragma once

// Deterministic fault scenarios scripted against simulated time.
//
// A FaultPlan is a declarative list of fault windows a run should suffer:
// memory-controller outages (requests reroute to surviving controllers
// with a bounded retry-with-backoff penalty), controller degradation
// (channel service slowed by a scale factor), thermal throttle windows on
// cores, transient ECC-retry latency spikes, and interfering background
// traffic bursts aimed at one controller. The plan itself is pure data —
// fault::FaultEngine turns it into health transitions and injections
// against mem::MemorySystem, and sim::MachineSim applies the core-local
// throttle windows. Everything is reproducible from SimConfig::seed:
// identical plan + seed gives bit-identical RunProfile counters.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace occm::fault {

enum class FaultKind : std::uint8_t {
  kControllerOutage,   ///< controller down; demand traffic fails over
  kControllerDegrade,  ///< channel occupancy scaled (slower service rate)
  kCoreThrottle,       ///< thermal throttle: core work cycles stretched
  kEccSpike,           ///< probabilistic ECC-retry latency added per request
  kBackgroundTraffic,  ///< periodic interfering transfers at one controller
  // Crash injections: the run *process* dies at a scripted cycle. These
  // exist to exercise the supervised (process-isolated) sweep path
  // end-to-end; a sweep refuses a crash plan unless isolation is enabled.
  kCrashAbort,  ///< std::abort() at the scripted cycle (SIGABRT)
  kCrashSegv,   ///< null-pointer store at the scripted cycle (SIGSEGV)
  kCrashOom,    ///< allocate until the memory budget kills the process
};

[[nodiscard]] constexpr const char* toString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kControllerOutage: return "controller-outage";
    case FaultKind::kControllerDegrade: return "controller-degrade";
    case FaultKind::kCoreThrottle: return "core-throttle";
    case FaultKind::kEccSpike: return "ecc-spike";
    case FaultKind::kBackgroundTraffic: return "background-traffic";
    case FaultKind::kCrashAbort: return "crash-abort";
    case FaultKind::kCrashSegv: return "crash-segv";
    case FaultKind::kCrashOom: return "crash-oom";
  }
  return "unknown";
}

/// True for the fault kinds that kill the run process (see above).
[[nodiscard]] constexpr bool isCrashKind(FaultKind kind) noexcept {
  return kind == FaultKind::kCrashAbort || kind == FaultKind::kCrashSegv ||
         kind == FaultKind::kCrashOom;
}

/// One scripted fault window [start, end) in simulated cycles.
struct FaultEvent {
  FaultKind kind = FaultKind::kControllerOutage;
  /// NodeId for controller faults, CoreId for throttle windows. For crash
  /// kinds: the active-core count the crash applies to (0 = every run),
  /// so a sweep-wide plan can kill exactly one of its core counts.
  std::int32_t target = 0;
  Cycles start = 0;
  Cycles end = 0;
  /// Service scale (degrade, >= 1), slowdown factor (throttle, >= 1) or
  /// ECC-retry probability (spike, in (0, 1]); unused otherwise.
  double magnitude = 1.0;
  /// Latency added per ECC retry; unused otherwise.
  Cycles penaltyCycles = 0;
  /// Inter-arrival of background transfers; unused otherwise.
  Cycles period = 0;
};

class FaultPlan {
 public:
  /// Controller `node` serves nothing in [start, end); demand requests
  /// pay the bounded retry/backoff penalty and reroute to the nearest
  /// healthy controller.
  FaultPlan& controllerOutage(NodeId node, Cycles start, Cycles end);

  /// Controller `node`'s channel occupancy is multiplied by
  /// `serviceScale` (>= 1) in [start, end).
  FaultPlan& controllerDegrade(NodeId node, Cycles start, Cycles end,
                               double serviceScale);

  /// Core `core` retires `slowdown`x (>= 1) slower in [start, end); the
  /// stretch is accounted as stall cycles (the core is not retiring).
  FaultPlan& coreThrottle(CoreId core, Cycles start, Cycles end,
                          double slowdown);

  /// Each request served by `node` in [start, end) suffers an extra
  /// `penalty`-cycle ECC retry with probability `probability`.
  FaultPlan& eccSpike(NodeId node, Cycles start, Cycles end,
                      double probability, Cycles penalty);

  /// Injects one interfering transfer at `node` every `period` cycles in
  /// [start, end) (scattered addresses: row-cycle-limited traffic).
  FaultPlan& backgroundTraffic(NodeId node, Cycles start, Cycles end,
                               Cycles period);

  /// The run process calls std::abort() at the first simulated event at
  /// or past `atCycle` — deterministic across machines, seeds and pool
  /// sizes. `activeCores` restricts the crash to runs with exactly that
  /// active-core count (0 = every run). Requires process isolation when
  /// used through runSweep.
  FaultPlan& crashAbort(Cycles atCycle, int activeCores = 0);

  /// As crashAbort, but dies on a null-pointer store (SIGSEGV).
  FaultPlan& crashSegv(Cycles atCycle, int activeCores = 0);

  /// As crashAbort, but allocates until the process's memory budget
  /// (RLIMIT_AS in an isolated child) kills it.
  FaultPlan& crashOom(Cycles atCycle, int activeCores = 0);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// True when the plan contains any crash-injection event.
  [[nodiscard]] bool hasCrash() const noexcept;

  /// Earliest crash event that applies to a run with `activeCores` active
  /// cores (matching target, or target 0 = any); nullptr when none does.
  [[nodiscard]] const FaultEvent* firstCrash(int activeCores) const noexcept;

  /// Machine-dependent validation: targets in range, and controller
  /// outages never cover every active controller at once (the memory
  /// system needs at least one healthy controller to fail over to).
  /// Throws ContractViolation with the offending event in the message.
  void validate(int controllers, int cores,
                std::span<const NodeId> activeNodes) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace occm::fault
