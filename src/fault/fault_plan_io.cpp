#include "fault/fault_plan_io.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/json_reader.hpp"

namespace occm::fault {

namespace {

constexpr int kPlanFormatVersion = 1;

std::string fmtDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

bool parseKind(const std::string& text, FaultKind* out) {
  for (const FaultKind kind :
       {FaultKind::kControllerOutage, FaultKind::kControllerDegrade,
        FaultKind::kCoreThrottle, FaultKind::kEccSpike,
        FaultKind::kBackgroundTraffic, FaultKind::kCrashAbort,
        FaultKind::kCrashSegv, FaultKind::kCrashOom}) {
    if (text == toString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// Cycles fields travel as JSON numbers; anything negative, non-finite
/// or too large to be a cycle count fails the parse.
bool toCycles(double value, Cycles* out) {
  if (!std::isfinite(value) || value < 0.0 || value > 9.0e18) {
    return false;
  }
  *out = static_cast<Cycles>(value);
  return true;
}

PlanParseError readerError(const JsonReader& reader) {
  PlanParseError err;
  err.byteOffset = reader.errorOffset();
  err.detail = reader.errorDetail();
  err.truncated = reader.truncated();
  return err;
}

/// Replays one parsed event through the FaultPlan builder, converting
/// the builders' ContractViolation into the typed parse error so the
/// builder contracts stay the single source of semantic validation.
bool appendEvent(FaultPlan& plan, const FaultEvent& e, std::string* detail) {
  try {
    switch (e.kind) {
      case FaultKind::kControllerOutage:
        plan.controllerOutage(e.target, e.start, e.end);
        return true;
      case FaultKind::kControllerDegrade:
        plan.controllerDegrade(e.target, e.start, e.end, e.magnitude);
        return true;
      case FaultKind::kCoreThrottle:
        plan.coreThrottle(e.target, e.start, e.end, e.magnitude);
        return true;
      case FaultKind::kEccSpike:
        plan.eccSpike(e.target, e.start, e.end, e.magnitude, e.penaltyCycles);
        return true;
      case FaultKind::kBackgroundTraffic:
        plan.backgroundTraffic(e.target, e.start, e.end, e.period);
        return true;
      case FaultKind::kCrashAbort:
        plan.crashAbort(e.start, e.target);
        return true;
      case FaultKind::kCrashSegv:
        plan.crashSegv(e.start, e.target);
        return true;
      case FaultKind::kCrashOom:
        plan.crashOom(e.start, e.target);
        return true;
    }
    *detail = "unknown fault kind value";
    return false;
  } catch (const ContractViolation& violation) {
    *detail = violation.what();
    return false;
  }
}

}  // namespace

std::string PlanParseError::message() const {
  std::string out = "corrupt fault plan (";
  out += truncated ? "truncated" : "invalid";
  out += ") at byte ";
  out += std::to_string(byteOffset);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::string toJson(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": " << kPlanFormatVersion << ",\n";
  out << "  \"events\": [";
  const std::vector<FaultEvent>& events = plan.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"kind\": \"" << toString(e.kind) << "\""
        << ", \"target\": " << e.target << ", \"start\": " << e.start
        << ", \"end\": " << e.end
        << ", \"magnitude\": " << fmtDouble(e.magnitude)
        << ", \"penaltyCycles\": " << e.penaltyCycles
        << ", \"period\": " << e.period << "}";
  }
  out << (events.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

Expected<FaultPlan, PlanParseError> planFromJson(const std::string& json) {
  JsonReader reader(json);
  FaultPlan plan;
  if (!reader.consume('{')) {
    return makeUnexpected(readerError(reader));
  }
  bool first = true;
  while (reader.ok() && !reader.peek('}')) {
    if (!first && !reader.consume(',')) {
      return makeUnexpected(readerError(reader));
    }
    first = false;
    const std::string key = reader.parseString();
    if (!reader.consume(':')) {
      return makeUnexpected(readerError(reader));
    }
    if (key == "version") {
      const int version = static_cast<int>(reader.parseNumber());
      if (reader.ok() && version != kPlanFormatVersion) {
        PlanParseError err;
        err.byteOffset = reader.offset();
        err.detail = "fault plan format version " + std::to_string(version) +
                     "; this build reads version " +
                     std::to_string(kPlanFormatVersion);
        return makeUnexpected(err);
      }
    } else if (key == "events") {
      if (!reader.consume('[')) {
        return makeUnexpected(readerError(reader));
      }
      bool firstEvent = true;
      while (reader.ok() && !reader.peek(']')) {
        if (!firstEvent && !reader.consume(',')) {
          return makeUnexpected(readerError(reader));
        }
        firstEvent = false;
        reader.skipWs();
        const std::size_t eventOffset = reader.offset();
        FaultEvent event;
        if (!reader.consume('{')) {
          return makeUnexpected(readerError(reader));
        }
        bool innerFirst = true;
        while (reader.ok() && !reader.peek('}')) {
          if (!innerFirst && !reader.consume(',')) {
            return makeUnexpected(readerError(reader));
          }
          innerFirst = false;
          const std::string field = reader.parseString();
          if (!reader.consume(':')) {
            return makeUnexpected(readerError(reader));
          }
          if (field == "kind") {
            const std::string kindText = reader.parseString();
            if (reader.ok() && !parseKind(kindText, &event.kind)) {
              reader.fail("unknown fault kind \"" + kindText + "\"");
            }
          } else if (field == "target") {
            const double value = reader.parseNumber();
            if (reader.ok() &&
                (!std::isfinite(value) || value < -2.0e9 || value > 2.0e9)) {
              reader.fail("target out of range");
            } else {
              event.target = static_cast<std::int32_t>(value);
            }
          } else if (field == "start") {
            if (!toCycles(reader.parseNumber(), &event.start)) {
              reader.fail("start is not a valid cycle count");
            }
          } else if (field == "end") {
            if (!toCycles(reader.parseNumber(), &event.end)) {
              reader.fail("end is not a valid cycle count");
            }
          } else if (field == "magnitude") {
            event.magnitude = reader.parseNumber();
            if (reader.ok() && !std::isfinite(event.magnitude)) {
              reader.fail("magnitude is not finite");
            }
          } else if (field == "penaltyCycles") {
            if (!toCycles(reader.parseNumber(), &event.penaltyCycles)) {
              reader.fail("penaltyCycles is not a valid cycle count");
            }
          } else if (field == "period") {
            if (!toCycles(reader.parseNumber(), &event.period)) {
              reader.fail("period is not a valid cycle count");
            }
          } else {
            reader.fail("unknown event field \"" + field + "\"");
          }
        }
        reader.consume('}');
        if (!reader.ok()) {
          return makeUnexpected(readerError(reader));
        }
        std::string detail;
        if (!appendEvent(plan, event, &detail)) {
          PlanParseError err;
          err.byteOffset = eventOffset;
          err.detail = detail;
          return makeUnexpected(err);
        }
      }
      reader.consume(']');
    } else {
      reader.fail("unknown fault plan key \"" + key + "\"");
    }
  }
  reader.consume('}');
  if (reader.ok() && !reader.atEnd()) {
    reader.fail("trailing bytes after the fault plan object");
  }
  if (!reader.ok()) {
    return makeUnexpected(readerError(reader));
  }
  return plan;
}

}  // namespace occm::fault
