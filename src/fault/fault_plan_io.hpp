#pragma once

// JSON persistence for fault::FaultPlan, so scripted fault scenarios can
// be saved next to a sweep's checkpoint and replayed byte-identically by
// a later invocation (fault_lab, resilience tests).
//
// Loading is hardened for untrusted bytes: planFromJson never asserts or
// crashes on truncated/garbage input — it returns a typed PlanParseError
// naming the byte offset of the first deviation, and semantic violations
// (an unknown kind, a window with start >= end, an out-of-range
// magnitude) are funneled through the same typed error by re-validating
// every parsed event against the FaultPlan builder contracts.

#include <string>

#include "common/expected.hpp"
#include "fault/fault_plan.hpp"

namespace occm::fault {

/// Why a serialized fault plan could not be loaded.
struct PlanParseError {
  /// Byte offset of the first deviation (0 for semantic errors detected
  /// after the bytes parsed cleanly).
  std::size_t byteOffset = 0;
  std::string detail;
  /// True when the bytes ran out mid-structure (vs being garbage).
  bool truncated = false;

  [[nodiscard]] std::string message() const;
};

/// Serializes the plan's events (versioned header, one JSON object per
/// event). Round-trips exactly: planFromJson(toJson(p)) reproduces p's
/// event list.
[[nodiscard]] std::string toJson(const FaultPlan& plan);

/// Parses what toJson produced. Every failure — truncation, garbage,
/// unknown kinds, events that violate the builder contracts — is a typed
/// PlanParseError; no exception escapes, no crash on any byte sequence.
[[nodiscard]] Expected<FaultPlan, PlanParseError> planFromJson(
    const std::string& json);

}  // namespace occm::fault
