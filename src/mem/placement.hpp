#pragma once

// NUMA page-placement policies (the role numactl played in the paper's
// protocol). A page's home node decides which memory controller serves its
// off-chip requests and how many interconnect hops a given core pays.

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/fastdiv.hpp"
#include "common/types.hpp"

namespace occm::mem {

enum class PlacementPolicy : std::uint8_t {
  /// Pages are interleaved round-robin across the *active* nodes — the
  /// paper's measured behaviour (the sharp contention drop when a new
  /// controller activates).
  kInterleaveActive,
  /// Pages are interleaved *proportionally to the active cores per node*
  /// — eq. 10's literal c/n split (an ablation variant).
  kProportionalInterleave,
  /// A page lives on the node of the first core that touches it.
  kFirstTouch,
  /// Every page lives on the requesting core's own node (no remote
  /// traffic; an idealised lower bound used in ablations).
  kLocal,
};

class PagePlacement {
 public:
  /// `nodeWeights` (same length as `activeNodes`, or empty for equal
  /// weights) drive the proportional-interleave policy — typically the
  /// number of active cores per node.
  PagePlacement(PlacementPolicy policy, Bytes pageSize,
                std::vector<NodeId> activeNodes,
                std::vector<int> nodeWeights = {})
      : policy_(policy), pageSize_(pageSize),
        activeNodes_(std::move(activeNodes)) {
    OCCM_REQUIRE_MSG(!activeNodes_.empty(), "need at least one active node");
    OCCM_REQUIRE(pageSize_ > 0 && (pageSize_ & (pageSize_ - 1)) == 0);
    pageShift_ = static_cast<unsigned>(std::countr_zero(pageSize_));
    activeNodesDiv_ = FastDiv(activeNodes_.size());
    if (nodeWeights.empty()) {
      nodeWeights.assign(activeNodes_.size(), 1);
    }
    OCCM_REQUIRE_MSG(nodeWeights.size() == activeNodes_.size(),
                     "one weight per active node");
    for (int w : nodeWeights) {
      OCCM_REQUIRE_MSG(w >= 1, "weights must be positive");
      totalWeight_ += static_cast<std::uint64_t>(w);
    }
    cumulativeWeights_.reserve(nodeWeights.size());
    std::uint64_t running = 0;
    for (int w : nodeWeights) {
      running += static_cast<std::uint64_t>(w);
      cumulativeWeights_.push_back(running);
    }
    totalWeightDiv_ = FastDiv(totalWeight_);
  }

  /// Home node of the page containing `addr`; `requesterNode` is the node
  /// of the requesting core (used by kFirstTouch / kLocal).
  [[nodiscard]] NodeId nodeOf(Addr addr, NodeId requesterNode) {
    const Addr page = addr >> pageShift_;
    switch (policy_) {
      case PlacementPolicy::kInterleaveActive:
        return activeNodes_[static_cast<std::size_t>(
            activeNodesDiv_.modulo(page))];
      case PlacementPolicy::kProportionalInterleave: {
        // Pick the node whose cumulative-weight bucket contains the
        // page's slot: node i receives weight_i / totalWeight of pages.
        const std::uint64_t slot = totalWeightDiv_.modulo(page);
        for (std::size_t i = 0; i < cumulativeWeights_.size(); ++i) {
          if (slot < cumulativeWeights_[i]) {
            return activeNodes_[i];
          }
        }
        return activeNodes_.back();
      }
      case PlacementPolicy::kFirstTouch: {
        const auto [it, inserted] = firstTouch_.try_emplace(page, requesterNode);
        return it->second;
      }
      case PlacementPolicy::kLocal:
        return requesterNode;
    }
    return activeNodes_.front();
  }

  [[nodiscard]] PlacementPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<NodeId>& activeNodes() const noexcept {
    return activeNodes_;
  }

 private:
  PlacementPolicy policy_;
  Bytes pageSize_;
  unsigned pageShift_ = 0;        ///< log2(pageSize_) — addr >> shift
  FastDiv activeNodesDiv_;        ///< reciprocal for % activeNodes_.size()
  FastDiv totalWeightDiv_;        ///< reciprocal for % totalWeight_
  std::vector<NodeId> activeNodes_;
  std::vector<std::uint64_t> cumulativeWeights_;
  std::uint64_t totalWeight_ = 0;
  std::unordered_map<Addr, NodeId> firstTouch_;
};

}  // namespace occm::mem
