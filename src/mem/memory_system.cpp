#include "mem/memory_system.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace occm::mem {

MemorySystem::MemorySystem(const topology::TopologyMap& topo,
                           const MemoryConfig& config,
                           std::vector<NodeId> activeNodes,
                           std::vector<int> nodeWeights)
    : topo_(topo), config_(config),
      placement_(config.placement, topo.spec().pageSize,
                 std::move(activeNodes), std::move(nodeWeights)),
      rng_(Rng::substream(config.seed, 0xC0117011E5ULL)) {
  const auto& spec = topo.spec();
  controllers_.resize(static_cast<std::size_t>(spec.controllers()));
  for (Controller& c : controllers_) {
    c.channels.resize(static_cast<std::size_t>(spec.channelsPerController));
    for (Channel& ch : c.channels) {
      ch.openRow.assign(static_cast<std::size_t>(spec.banksPerChannel),
                        kNoRow);
    }
  }
  if (spec.memoryArchitecture == topology::MemoryArchitecture::kUma &&
      spec.busServiceCycles > 0) {
    buses_.resize(static_cast<std::size_t>(spec.sockets));
  }
  if (spec.memoryArchitecture == topology::MemoryArchitecture::kNuma &&
      spec.linkServiceCycles > 0) {
    const auto n = static_cast<std::size_t>(spec.controllers());
    links_.resize(n * n);
  }
  for (NodeId node : placement_.activeNodes()) {
    OCCM_REQUIRE_MSG(node >= 0 && node < spec.controllers(),
                     "active node out of range");
  }
}

Cycles MemorySystem::drawService(Cycles mean) {
  switch (config_.service) {
    case ServiceDiscipline::kExponential: {
      // Round up so service is never zero cycles.
      const double s = rng_.exponential(static_cast<double>(mean));
      return std::max<Cycles>(1, static_cast<Cycles>(s + 0.5));
    }
    case ServiceDiscipline::kDeterministic:
      return std::max<Cycles>(1, mean);
  }
  return 1;
}

Cycles MemorySystem::reserveLink(NodeId a, NodeId b, int hops, Cycles arrival,
                                 int transfers) {
  if (links_.empty() || hops == 0 || transfers == 0) {
    return 0;
  }
  if (a > b) {
    std::swap(a, b);
  }
  const auto n = static_cast<std::size_t>(topo_.spec().controllers());
  Link& link = links_[static_cast<std::size_t>(a) * n +
                      static_cast<std::size_t>(b)];
  const Cycles start = std::max(arrival, link.freeAt);
  // Longer paths occupy more link segments; charge occupancy per hop.
  link.freeAt = start + static_cast<Cycles>(transfers) *
                            static_cast<Cycles>(hops) *
                            topo_.spec().linkServiceCycles;
  return start - arrival;
}

MemorySystem::ChannelGrant MemorySystem::reserveChannel(
    Controller& controller, Addr addr, Cycles arrival) {
  const auto& spec = topo_.spec();
  const Addr row = addr / spec.rowBytes;
  // Address-striped channel and bank: rows interleave over channels, then
  // over banks within the channel.
  auto& channel = controller.channels[static_cast<std::size_t>(
      row % controller.channels.size())];
  const auto bank = static_cast<std::size_t>(
      (row / controller.channels.size()) % channel.openRow.size());
  const bool rowHit = channel.openRow[bank] == row;
  channel.openRow[bank] = row;
  if (rowHit) {
    ++controller.stats.rowHits;
  } else {
    ++controller.stats.rowMisses;
  }
  const Cycles start = std::max(arrival, channel.freeAt);
  const Cycles service = drawService(rowHit ? spec.rowHitServiceCycles
                                            : spec.rowMissServiceCycles);
  channel.freeAt = start + service;
  controller.stats.busyCycles += service;
  return {start, service, rowHit};
}

RequestTiming MemorySystem::request(Cycles now, CoreId core, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;

  const auto& spec = topo_.spec();
  const NodeId requesterNode = topo_.homeNode(core);
  const NodeId homeNode = placement_.nodeOf(addr, requesterNode);
  Controller& controller = controllers_[static_cast<std::size_t>(homeNode)];

  RequestTiming timing;
  timing.node = homeNode;
  timing.remote = homeNode != requesterNode;

  Cycles arrival = now;
  // UMA: the per-socket front-side bus is a first queueing stage.
  if (!buses_.empty()) {
    Bus& bus = buses_[static_cast<std::size_t>(topo_.location(core).socket)];
    const Cycles busStart = std::max(arrival, bus.freeAt);
    bus.freeAt = busStart + spec.busServiceCycles;
    bus.busy += spec.busServiceCycles;
    timing.queueWait += busStart - arrival;
    arrival = busStart + spec.busServiceCycles;
  }
  // NUMA: pay the interconnect on the way to a remote controller — hop
  // latency plus queueing for the finite-bandwidth path (request there,
  // data line back: 2 transfers reserved up front).
  const int hops = topo_.hops(requesterNode, homeNode);
  const Cycles hopOneWay = static_cast<Cycles>(hops) * spec.hopCycles;
  const Cycles linkWait =
      reserveLink(requesterNode, homeNode, hops, arrival, 2);
  timing.queueWait += linkWait;
  arrival += linkWait + hopOneWay;

  const ChannelGrant grant = reserveChannel(controller, addr, arrival);
  timing.queueWait += grant.start - arrival;
  timing.hopCycles = 2 * hopOneWay;
  // The channel occupancy (`service`) gates *throughput* — it holds the
  // channel and delays later arrivals — but DRAM pipelining hides it from
  // this request's own latency: a solo miss completes after dramLatency.
  timing.done = grant.start + spec.dramLatency + hopOneWay;

  controller.stats.requests += 1;
  controller.stats.remoteRequests += timing.remote ? 1 : 0;
  controller.stats.totalWait += timing.queueWait;
  controller.stats.totalService += grant.service;
  if (observer_ != nullptr) {
    observer_->onTransfer({arrival, grant.start, grant.service,
                           timing.queueWait, homeNode, timing.remote,
                           grant.rowHit, false});
  }
  return timing;
}

void MemorySystem::writeback(Cycles now, CoreId core, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;
  const NodeId requesterNode = topo_.homeNode(core);
  const NodeId homeNode = placement_.nodeOf(addr, requesterNode);
  Controller& controller = controllers_[static_cast<std::size_t>(homeNode)];
  const int hops = topo_.hops(requesterNode, homeNode);
  const Cycles hopOneWay =
      static_cast<Cycles>(hops) * topo_.spec().hopCycles;
  const Cycles linkWait = reserveLink(requesterNode, homeNode, hops, now, 1);
  const Cycles arrival = now + linkWait + hopOneWay;
  const ChannelGrant grant = reserveChannel(controller, addr, arrival);
  controller.stats.writebacks += 1;
  if (observer_ != nullptr) {
    observer_->onTransfer({arrival, grant.start, grant.service,
                           linkWait + (grant.start - arrival), homeNode,
                           homeNode != requesterNode, grant.rowHit, true});
  }
}

const ControllerStats& MemorySystem::controllerStats(NodeId node) const {
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  return controllers_[static_cast<std::size_t>(node)].stats;
}

std::uint64_t MemorySystem::totalRequests() const noexcept {
  std::uint64_t total = 0;
  for (const Controller& c : controllers_) {
    total += c.stats.requests;
  }
  return total;
}

}  // namespace occm::mem
