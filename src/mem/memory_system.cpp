#include "mem/memory_system.hpp"

#include <algorithm>

#include "common/backoff.hpp"
#include "common/error.hpp"

namespace occm::mem {

MemorySystem::MemorySystem(const topology::TopologyMap& topo,
                           const MemoryConfig& config,
                           std::vector<NodeId> activeNodes,
                           std::vector<int> nodeWeights)
    : topo_(topo), config_(config),
      placement_(config.placement, topo.spec().pageSize,
                 std::move(activeNodes), std::move(nodeWeights)),
      rng_(Rng::substream(config.seed, 0xC0117011E5ULL)) {
  const auto& spec = topo.spec();
  controllers_.resize(static_cast<std::size_t>(spec.controllers()));
  for (Controller& c : controllers_) {
    c.channels.resize(static_cast<std::size_t>(spec.channelsPerController));
    for (Channel& ch : c.channels) {
      ch.openRow.assign(static_cast<std::size_t>(spec.banksPerChannel),
                        kNoRow);
    }
  }
  if (spec.memoryArchitecture == topology::MemoryArchitecture::kUma &&
      spec.busServiceCycles > 0) {
    buses_.resize(static_cast<std::size_t>(spec.sockets));
  }
  if (spec.memoryArchitecture == topology::MemoryArchitecture::kNuma &&
      spec.linkServiceCycles > 0) {
    const auto n = static_cast<std::size_t>(spec.controllers());
    links_.resize(n * n);
  }
  for (NodeId node : placement_.activeNodes()) {
    OCCM_REQUIRE_MSG(node >= 0 && node < spec.controllers(),
                     "active node out of range");
  }
}

Cycles MemorySystem::drawService(Cycles mean) {
  switch (config_.service) {
    case ServiceDiscipline::kExponential: {
      // Round up so service is never zero cycles.
      const double s = rng_.exponential(static_cast<double>(mean));
      return std::max<Cycles>(1, static_cast<Cycles>(s + 0.5));
    }
    case ServiceDiscipline::kDeterministic:
      return std::max<Cycles>(1, mean);
  }
  return 1;
}

Cycles MemorySystem::reserveLink(NodeId a, NodeId b, int hops, Cycles arrival,
                                 int transfers) {
  if (links_.empty() || hops == 0 || transfers == 0) {
    return 0;
  }
  if (a > b) {
    std::swap(a, b);
  }
  const auto n = static_cast<std::size_t>(topo_.spec().controllers());
  Link& link = links_[static_cast<std::size_t>(a) * n +
                      static_cast<std::size_t>(b)];
  ++reservationOps_;
  const Cycles start = std::max(arrival, link.freeAt);
  // Longer paths occupy more link segments; charge occupancy per hop.
  link.freeAt = start + static_cast<Cycles>(transfers) *
                            static_cast<Cycles>(hops) *
                            topo_.spec().linkServiceCycles;
  return start - arrival;
}

MemorySystem::ChannelGrant MemorySystem::reserveChannel(
    Controller& controller, Addr addr, Cycles arrival) {
  ++reservationOps_;
  const auto& spec = topo_.spec();
  const Addr row = addr / spec.rowBytes;
  // Address-striped channel and bank: rows interleave over channels, then
  // over banks within the channel.
  auto& channel = controller.channels[static_cast<std::size_t>(
      row % controller.channels.size())];
  const auto bank = static_cast<std::size_t>(
      (row / controller.channels.size()) % channel.openRow.size());
  const bool rowHit = channel.openRow[bank] == row;
  channel.openRow[bank] = row;
  if (rowHit) {
    ++controller.stats.rowHits;
  } else {
    ++controller.stats.rowMisses;
  }
  const Cycles start = std::max(arrival, channel.freeAt);
  Cycles service = drawService(rowHit ? spec.rowHitServiceCycles
                                      : spec.rowMissServiceCycles);
  // Degraded service rate: scale after the draw so the generator stream
  // stays aligned with the healthy run (scenario comparisons stay
  // request-for-request comparable).
  if (controller.health.serviceScale != 1.0) {
    service = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(service) *
                                   controller.health.serviceScale +
                               0.5));
  }
  channel.freeAt = start + service;
  controller.stats.busyCycles += service;
  return {start, service, rowHit};
}

NodeId MemorySystem::failoverNode(NodeId requester, NodeId original) const {
  NodeId best = -1;
  int bestHops = 0;
  for (NodeId node : placement_.activeNodes()) {
    if (node == original ||
        !controllers_[static_cast<std::size_t>(node)].health.up) {
      continue;
    }
    const int hops = topo_.hops(requester, node);
    if (best < 0 || hops < bestHops || (hops == bestHops && node < best)) {
      best = node;
      bestHops = hops;
    }
  }
  OCCM_REQUIRE_MSG(best >= 0,
                   "controller " + std::to_string(original) +
                       " is down and no healthy active controller remains");
  return best;
}

RequestTiming MemorySystem::request(Cycles now, CoreId core, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;

  const auto& spec = topo_.spec();
  const NodeId requesterNode = topo_.homeNode(core);
  NodeId homeNode = placement_.nodeOf(addr, requesterNode);

  RequestTiming timing;
  Cycles arrival = now;
  if (!controllers_[static_cast<std::size_t>(homeNode)].health.up) {
    // The home controller is down: the request times out and retries with
    // exponential backoff (bounded), then fails over to the nearest
    // healthy controller — paying the backoff before it even leaves.
    ControllerStats& downStats =
        controllers_[static_cast<std::size_t>(homeNode)].stats;
    // Shared retry policy (common/backoff.hpp), uncapped and jitter-free:
    // the penalty is simulated cycles, so it must stay a pure function of
    // the spec for bit-identical runs.
    const BackoffPolicy retryPolicy{.base = spec.dramLatency};
    const Cycles backoff =
        retryPolicy.cumulative(static_cast<std::uint32_t>(kFailoverRetries));
    downStats.retryAttempts += kFailoverRetries;
    downStats.reroutedAway += 1;
    timing.retryCycles = backoff;
    timing.queueWait += backoff;
    timing.rerouted = true;
    arrival += backoff;
    homeNode = failoverNode(requesterNode, homeNode);
    controllers_[static_cast<std::size_t>(homeNode)].stats.absorbed += 1;
  }
  Controller& controller = controllers_[static_cast<std::size_t>(homeNode)];
  timing.node = homeNode;
  timing.remote = homeNode != requesterNode;

  // UMA: the per-socket front-side bus is a first queueing stage.
  if (!buses_.empty()) {
    ++reservationOps_;
    Bus& bus = buses_[static_cast<std::size_t>(topo_.location(core).socket)];
    const Cycles busStart = std::max(arrival, bus.freeAt);
    bus.freeAt = busStart + spec.busServiceCycles;
    bus.busy += spec.busServiceCycles;
    timing.queueWait += busStart - arrival;
    arrival = busStart + spec.busServiceCycles;
  }
  // NUMA: pay the interconnect on the way to a remote controller — hop
  // latency plus queueing for the finite-bandwidth path (request there,
  // data line back: 2 transfers reserved up front).
  const int hops = topo_.hops(requesterNode, homeNode);
  const Cycles hopOneWay = static_cast<Cycles>(hops) * spec.hopCycles;
  const Cycles linkWait =
      reserveLink(requesterNode, homeNode, hops, arrival, 2);
  timing.queueWait += linkWait;
  arrival += linkWait + hopOneWay;

  const ChannelGrant grant = reserveChannel(controller, addr, arrival);
  timing.queueWait += grant.start - arrival;
  timing.hopCycles = 2 * hopOneWay;
  // The channel occupancy (`service`) gates *throughput* — it holds the
  // channel and delays later arrivals — but DRAM pipelining hides it from
  // this request's own latency: a solo miss completes after dramLatency.
  timing.done = grant.start + spec.dramLatency + hopOneWay;

  // Transient ECC-retry latency spike (fault plan): the line needs a
  // retried burst, delaying this request without occupying the channel.
  if (controller.health.eccProbability > 0.0 &&
      rng_.bernoulli(controller.health.eccProbability)) {
    timing.done += controller.health.eccPenalty;
    controller.stats.eccRetries += 1;
  }

  controller.stats.requests += 1;
  controller.stats.remoteRequests += timing.remote ? 1 : 0;
  controller.stats.totalWait += timing.queueWait;
  controller.stats.totalService += grant.service;
  if (observer_ != nullptr) {
    observer_->onTransfer({arrival, grant.start, grant.service,
                           timing.queueWait, homeNode, timing.remote,
                           grant.rowHit, false, false});
  }
  return timing;
}

void MemorySystem::writeback(Cycles now, CoreId core, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;
  const NodeId requesterNode = topo_.homeNode(core);
  NodeId homeNode = placement_.nodeOf(addr, requesterNode);
  if (!controllers_[static_cast<std::size_t>(homeNode)].health.up) {
    // Posted writebacks fail over without the demand-path retry penalty.
    controllers_[static_cast<std::size_t>(homeNode)].stats.reroutedAway += 1;
    homeNode = failoverNode(requesterNode, homeNode);
    controllers_[static_cast<std::size_t>(homeNode)].stats.absorbed += 1;
  }
  Controller& controller = controllers_[static_cast<std::size_t>(homeNode)];
  const int hops = topo_.hops(requesterNode, homeNode);
  const Cycles hopOneWay =
      static_cast<Cycles>(hops) * topo_.spec().hopCycles;
  const Cycles linkWait = reserveLink(requesterNode, homeNode, hops, now, 1);
  const Cycles arrival = now + linkWait + hopOneWay;
  const ChannelGrant grant = reserveChannel(controller, addr, arrival);
  controller.stats.writebacks += 1;
  if (observer_ != nullptr) {
    observer_->onTransfer({arrival, grant.start, grant.service,
                           linkWait + (grant.start - arrival), homeNode,
                           homeNode != requesterNode, grant.rowHit, true,
                           false});
  }
}

void MemorySystem::setControllerUp(NodeId node, bool up) {
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  controllers_[static_cast<std::size_t>(node)].health.up = up;
}

void MemorySystem::setControllerServiceScale(NodeId node, double scale) {
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  OCCM_REQUIRE_MSG(scale >= 1.0, "service scale must be >= 1");
  controllers_[static_cast<std::size_t>(node)].health.serviceScale = scale;
}

void MemorySystem::setControllerEcc(NodeId node, double probability,
                                    Cycles penalty) {
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  OCCM_REQUIRE_MSG(probability >= 0.0 && probability <= 1.0,
                   "ECC probability must be in [0, 1]");
  Controller& c = controllers_[static_cast<std::size_t>(node)];
  c.health.eccProbability = probability;
  c.health.eccPenalty = penalty;
}

const ControllerHealth& MemorySystem::controllerHealth(NodeId node) const {
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  return controllers_[static_cast<std::size_t>(node)].health;
}

int MemorySystem::healthyActiveControllers() const noexcept {
  int healthy = 0;
  for (NodeId node : placement_.activeNodes()) {
    healthy += controllers_[static_cast<std::size_t>(node)].health.up ? 1 : 0;
  }
  return healthy;
}

void MemorySystem::injectBackground(Cycles now, NodeId node, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  Controller& controller = controllers_[static_cast<std::size_t>(node)];
  if (!controller.health.up) {
    return;  // a dead controller attracts no interfering traffic
  }
  const ChannelGrant grant = reserveChannel(controller, addr, now);
  controller.stats.background += 1;
  if (observer_ != nullptr) {
    observer_->onTransfer({now, grant.start, grant.service,
                           grant.start - now, node, false, grant.rowHit,
                           false, true});
  }
}

const ControllerStats& MemorySystem::controllerStats(NodeId node) const {
  OCCM_REQUIRE(node >= 0 &&
               static_cast<std::size_t>(node) < controllers_.size());
  return controllers_[static_cast<std::size_t>(node)].stats;
}

std::uint64_t MemorySystem::totalRequests() const noexcept {
  std::uint64_t total = 0;
  for (const Controller& c : controllers_) {
    total += c.stats.requests;
  }
  return total;
}

}  // namespace occm::mem
