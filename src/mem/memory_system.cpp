#include "mem/memory_system.hpp"

#include <algorithm>

#include "common/backoff.hpp"
#include "common/error.hpp"

namespace occm::mem {

MemorySystem::MemorySystem(const topology::TopologyMap& topo,
                           const MemoryConfig& config,
                           std::vector<NodeId> activeNodes,
                           std::vector<int> nodeWeights)
    : topo_(topo), config_(config),
      placement_(config.placement, topo.spec().pageSize,
                 std::move(activeNodes), std::move(nodeWeights)),
      rng_(Rng::substream(config.seed, 0xC0117011E5ULL)) {
  const auto& spec = topo.spec();
  nControllers_ = spec.controllers();
  channelsPerController_ =
      static_cast<std::uint32_t>(spec.channelsPerController);
  banksPerChannel_ = static_cast<std::uint32_t>(spec.banksPerChannel);
  rowBytesDiv_ = FastDiv(spec.rowBytes);
  channelsDiv_ = FastDiv(channelsPerController_);
  banksDiv_ = FastDiv(banksPerChannel_);

  const auto n = static_cast<std::size_t>(nControllers_);
  channelFreeAt_.assign(n * channelsPerController_, 0);
  openRow_.assign(n * channelsPerController_ * banksPerChannel_, kNoRow);
  stats_.assign(n, {});
  health_.assign(n, {});

  if (spec.memoryArchitecture == topology::MemoryArchitecture::kUma &&
      spec.busServiceCycles > 0) {
    buses_.assign(static_cast<std::size_t>(spec.sockets), {});
  }
  if (spec.memoryArchitecture == topology::MemoryArchitecture::kNuma &&
      spec.linkServiceCycles > 0) {
    linkFreeAt_.assign(n * n, 0);
  }

  busServiceCycles_ = spec.busServiceCycles;
  linkServiceCycles_ = spec.linkServiceCycles;
  hopCycles_ = spec.hopCycles;
  dramLatency_ = spec.dramLatency;
  rowHitServiceCycles_ = spec.rowHitServiceCycles;
  rowMissServiceCycles_ = spec.rowMissServiceCycles;

  // Per-core and node-pair topology lookups, resolved once: the request
  // path then reads flat tables instead of walking the topology map.
  const int cores = spec.logicalCores();
  homeNodeOf_.resize(static_cast<std::size_t>(cores));
  socketOf_.resize(static_cast<std::size_t>(cores));
  for (CoreId core = 0; core < cores; ++core) {
    homeNodeOf_[static_cast<std::size_t>(core)] = topo.homeNode(core);
    socketOf_[static_cast<std::size_t>(core)] = topo.location(core).socket;
  }
  hops_.resize(n * n);
  for (NodeId a = 0; a < nControllers_; ++a) {
    for (NodeId b = 0; b < nControllers_; ++b) {
      hops_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)] =
          topo.hops(a, b);
    }
  }

  for (NodeId node : placement_.activeNodes()) {
    OCCM_REQUIRE_MSG(node >= 0 && node < spec.controllers(),
                     "active node out of range");
  }
}

Cycles MemorySystem::drawService(Cycles mean) {
  switch (config_.service) {
    case ServiceDiscipline::kExponential: {
      // Round up so service is never zero cycles.
      const double s = rng_.exponential(static_cast<double>(mean));
      return std::max<Cycles>(1, static_cast<Cycles>(s + 0.5));
    }
    case ServiceDiscipline::kDeterministic:
      return std::max<Cycles>(1, mean);
  }
  return 1;
}

Cycles MemorySystem::reserveLink(NodeId a, NodeId b, int hops, Cycles arrival,
                                 int transfers) {
  if (linkFreeAt_.empty() || hops == 0 || transfers == 0) {
    return 0;
  }
  if (a > b) {
    std::swap(a, b);
  }
  Cycles& freeAt = linkFreeAt_[static_cast<std::size_t>(a) *
                                   static_cast<std::size_t>(nControllers_) +
                               static_cast<std::size_t>(b)];
  ++reservationOps_;
  const Cycles start = std::max(arrival, freeAt);
  // Longer paths occupy more link segments; charge occupancy per hop.
  freeAt = start + static_cast<Cycles>(transfers) *
                       static_cast<Cycles>(hops) * linkServiceCycles_;
  return start - arrival;
}

MemorySystem::ChannelGrant MemorySystem::reserveChannel(NodeId node,
                                                        Addr addr,
                                                        Cycles arrival) {
  ++reservationOps_;
  const Addr row = rowBytesDiv_.divide(addr);
  // Address-striped channel and bank: rows interleave over channels, then
  // over banks within the channel.
  const auto channel = static_cast<std::size_t>(
                           node * static_cast<NodeId>(channelsPerController_)) +
                       static_cast<std::size_t>(channelsDiv_.modulo(row));
  const auto bank = static_cast<std::size_t>(
      banksDiv_.modulo(channelsDiv_.divide(row)));
  Addr& openRow = openRow_[channel * banksPerChannel_ + bank];
  const bool rowHit = openRow == row;
  openRow = row;
  ControllerStats& stats = stats_[static_cast<std::size_t>(node)];
  if (rowHit) {
    ++stats.rowHits;
  } else {
    ++stats.rowMisses;
  }
  Cycles& freeAt = channelFreeAt_[channel];
  const Cycles start = std::max(arrival, freeAt);
  Cycles service =
      drawService(rowHit ? rowHitServiceCycles_ : rowMissServiceCycles_);
  // Degraded service rate: scale after the draw so the generator stream
  // stays aligned with the healthy run (scenario comparisons stay
  // request-for-request comparable).
  const double serviceScale = health_[static_cast<std::size_t>(node)]
                                  .serviceScale;
  if (serviceScale != 1.0) {
    service = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(service) * serviceScale +
                               0.5));
  }
  freeAt = start + service;
  stats.busyCycles += service;
  return {start, service, rowHit};
}

NodeId MemorySystem::failoverNode(NodeId requester, NodeId original) const {
  NodeId best = -1;
  int bestHops = 0;
  for (NodeId node : placement_.activeNodes()) {
    if (node == original || !health_[static_cast<std::size_t>(node)].up) {
      continue;
    }
    const int hops = hopsBetween(requester, node);
    if (best < 0 || hops < bestHops || (hops == bestHops && node < best)) {
      best = node;
      bestHops = hops;
    }
  }
  OCCM_REQUIRE_MSG(best >= 0,
                   "controller " + std::to_string(original) +
                       " is down and no healthy active controller remains");
  return best;
}

RequestTiming MemorySystem::request(Cycles now, CoreId core, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;

  const NodeId requesterNode = homeNodeOf_[static_cast<std::size_t>(core)];
  NodeId homeNode = placement_.nodeOf(addr, requesterNode);

  RequestTiming timing;
  Cycles arrival = now;
  if (!health_[static_cast<std::size_t>(homeNode)].up) {
    // The home controller is down: the request times out and retries with
    // exponential backoff (bounded), then fails over to the nearest
    // healthy controller — paying the backoff before it even leaves.
    ControllerStats& downStats = stats_[static_cast<std::size_t>(homeNode)];
    // Shared retry policy (common/backoff.hpp), uncapped and jitter-free:
    // the penalty is simulated cycles, so it must stay a pure function of
    // the spec for bit-identical runs.
    const BackoffPolicy retryPolicy{.base = dramLatency_};
    const Cycles backoff =
        retryPolicy.cumulative(static_cast<std::uint32_t>(kFailoverRetries));
    downStats.retryAttempts += kFailoverRetries;
    downStats.reroutedAway += 1;
    timing.retryCycles = backoff;
    timing.queueWait += backoff;
    timing.rerouted = true;
    arrival += backoff;
    homeNode = failoverNode(requesterNode, homeNode);
    stats_[static_cast<std::size_t>(homeNode)].absorbed += 1;
  }
  timing.node = homeNode;
  timing.remote = homeNode != requesterNode;

  // UMA: the per-socket front-side bus is a first queueing stage.
  if (!buses_.empty()) {
    ++reservationOps_;
    Bus& bus = buses_[static_cast<std::size_t>(
        socketOf_[static_cast<std::size_t>(core)])];
    const Cycles busStart = std::max(arrival, bus.freeAt);
    bus.freeAt = busStart + busServiceCycles_;
    bus.busy += busServiceCycles_;
    timing.queueWait += busStart - arrival;
    arrival = busStart + busServiceCycles_;
  }
  // NUMA: pay the interconnect on the way to a remote controller — hop
  // latency plus queueing for the finite-bandwidth path (request there,
  // data line back: 2 transfers reserved up front).
  const int hops = hopsBetween(requesterNode, homeNode);
  const Cycles hopOneWay = static_cast<Cycles>(hops) * hopCycles_;
  const Cycles linkWait =
      reserveLink(requesterNode, homeNode, hops, arrival, 2);
  timing.queueWait += linkWait;
  arrival += linkWait + hopOneWay;

  const ChannelGrant grant = reserveChannel(homeNode, addr, arrival);
  timing.queueWait += grant.start - arrival;
  timing.hopCycles = 2 * hopOneWay;
  // The channel occupancy (`service`) gates *throughput* — it holds the
  // channel and delays later arrivals — but DRAM pipelining hides it from
  // this request's own latency: a solo miss completes after dramLatency.
  timing.done = grant.start + dramLatency_ + hopOneWay;

  ControllerStats& stats = stats_[static_cast<std::size_t>(homeNode)];
  const ControllerHealth& health = health_[static_cast<std::size_t>(homeNode)];
  // Transient ECC-retry latency spike (fault plan): the line needs a
  // retried burst, delaying this request without occupying the channel.
  if (health.eccProbability > 0.0 && rng_.bernoulli(health.eccProbability)) {
    timing.done += health.eccPenalty;
    stats.eccRetries += 1;
  }

  stats.requests += 1;
  stats.remoteRequests += timing.remote ? 1 : 0;
  stats.totalWait += timing.queueWait;
  stats.totalService += grant.service;
  if (observer_ != nullptr) {
    observer_->onTransfer({arrival, grant.start, grant.service,
                           timing.queueWait, homeNode, timing.remote,
                           grant.rowHit, false, false});
  }
  return timing;
}

void MemorySystem::writeback(Cycles now, CoreId core, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;
  const NodeId requesterNode = homeNodeOf_[static_cast<std::size_t>(core)];
  NodeId homeNode = placement_.nodeOf(addr, requesterNode);
  if (!health_[static_cast<std::size_t>(homeNode)].up) {
    // Posted writebacks fail over without the demand-path retry penalty.
    stats_[static_cast<std::size_t>(homeNode)].reroutedAway += 1;
    homeNode = failoverNode(requesterNode, homeNode);
    stats_[static_cast<std::size_t>(homeNode)].absorbed += 1;
  }
  const int hops = hopsBetween(requesterNode, homeNode);
  const Cycles hopOneWay = static_cast<Cycles>(hops) * hopCycles_;
  const Cycles linkWait = reserveLink(requesterNode, homeNode, hops, now, 1);
  const Cycles arrival = now + linkWait + hopOneWay;
  const ChannelGrant grant = reserveChannel(homeNode, addr, arrival);
  stats_[static_cast<std::size_t>(homeNode)].writebacks += 1;
  if (observer_ != nullptr) {
    observer_->onTransfer({arrival, grant.start, grant.service,
                           linkWait + (grant.start - arrival), homeNode,
                           homeNode != requesterNode, grant.rowHit, true,
                           false});
  }
}

void MemorySystem::setControllerUp(NodeId node, bool up) {
  OCCM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < health_.size());
  health_[static_cast<std::size_t>(node)].up = up;
}

void MemorySystem::setControllerServiceScale(NodeId node, double scale) {
  OCCM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < health_.size());
  OCCM_REQUIRE_MSG(scale >= 1.0, "service scale must be >= 1");
  health_[static_cast<std::size_t>(node)].serviceScale = scale;
}

void MemorySystem::setControllerEcc(NodeId node, double probability,
                                    Cycles penalty) {
  OCCM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < health_.size());
  OCCM_REQUIRE_MSG(probability >= 0.0 && probability <= 1.0,
                   "ECC probability must be in [0, 1]");
  ControllerHealth& h = health_[static_cast<std::size_t>(node)];
  h.eccProbability = probability;
  h.eccPenalty = penalty;
}

const ControllerHealth& MemorySystem::controllerHealth(NodeId node) const {
  OCCM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < health_.size());
  return health_[static_cast<std::size_t>(node)];
}

int MemorySystem::healthyActiveControllers() const noexcept {
  int healthy = 0;
  for (NodeId node : placement_.activeNodes()) {
    healthy += health_[static_cast<std::size_t>(node)].up ? 1 : 0;
  }
  return healthy;
}

void MemorySystem::injectBackground(Cycles now, NodeId node, Addr addr) {
  OCCM_ASSERT(now >= lastNow_);
  lastNow_ = now;
  OCCM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < health_.size());
  if (!health_[static_cast<std::size_t>(node)].up) {
    return;  // a dead controller attracts no interfering traffic
  }
  const ChannelGrant grant = reserveChannel(node, addr, now);
  stats_[static_cast<std::size_t>(node)].background += 1;
  if (observer_ != nullptr) {
    observer_->onTransfer({now, grant.start, grant.service,
                           grant.start - now, node, false, grant.rowHit,
                           false, true});
  }
}

const ControllerStats& MemorySystem::controllerStats(NodeId node) const {
  OCCM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < stats_.size());
  return stats_[static_cast<std::size_t>(node)];
}

std::uint64_t MemorySystem::totalRequests() const noexcept {
  std::uint64_t total = 0;
  for (const ControllerStats& s : stats_) {
    total += s.requests;
  }
  return total;
}

}  // namespace occm::mem
