#pragma once

// The off-chip memory system: per-controller channel queues with DRAM
// row-buffer state, the UMA front-side buses, and the NUMA interconnect
// hop delays.
//
// Requests stripe over a controller's channels by row address; each
// channel has `banksPerChannel` banks, each remembering its open row.
// A request to the open row occupies the channel for the burst transfer
// only (rowHitServiceCycles); any other request pays the row cycle
// (rowMissServiceCycles). Sequential streams therefore get near-peak
// bandwidth while scattered/strided traffic is row-cycle limited — and
// many interleaved streams evict each other's open rows, which is the
// physical mechanism behind the contention the paper measures.
//
// Timing uses a resource-reservation ("server free at") model, which is
// exact for FIFO queues as long as requests are presented in nondecreasing
// time order — the simulator's event loop guarantees that (and this class
// asserts it). Demand requests block the issuing core and return their
// completion time; writebacks only occupy channel bandwidth.

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/fastdiv.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "mem/placement.hpp"
#include "topology/topology_map.hpp"

namespace occm::mem {

enum class ServiceDiscipline : std::uint8_t {
  kExponential,   ///< exponential channel occupancy (M/M/c-like controller)
  kDeterministic, ///< fixed channel occupancy (M/D/c-like)
};

struct MemoryConfig {
  PlacementPolicy placement = PlacementPolicy::kInterleaveActive;
  ServiceDiscipline service = ServiceDiscipline::kExponential;
  std::uint64_t seed = 1;
};

/// Counters for one memory controller.
struct ControllerStats {
  std::uint64_t requests = 0;       ///< demand requests served
  std::uint64_t writebacks = 0;
  std::uint64_t remoteRequests = 0; ///< demand requests from another node
  std::uint64_t rowHits = 0;        ///< open-row hits (demand + writeback)
  std::uint64_t rowMisses = 0;
  Cycles busyCycles = 0;            ///< channel occupancy accumulated
  Cycles totalWait = 0;             ///< queueing delay of demand requests
  Cycles totalService = 0;          ///< channel occupancy of demand requests
  // Degraded-mode counters (all zero on a healthy run).
  std::uint64_t reroutedAway = 0;   ///< arrivals while down, failed over
  std::uint64_t absorbed = 0;       ///< transfers served for a down peer
  std::uint64_t retryAttempts = 0;  ///< bounded retries against this node
  std::uint64_t eccRetries = 0;     ///< ECC-retry latency spikes applied
  std::uint64_t background = 0;     ///< injected interfering transfers

  [[nodiscard]] double meanWait() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(totalWait) /
                                     static_cast<double>(requests);
  }
  [[nodiscard]] double rowHitRatio() const noexcept {
    const double total = static_cast<double>(rowHits + rowMisses);
    return total == 0.0 ? 0.0 : static_cast<double>(rowHits) / total;
  }
};

/// Timing breakdown of one demand request.
struct RequestTiming {
  Cycles done = 0;        ///< absolute completion time
  Cycles queueWait = 0;   ///< cycles spent waiting for a channel
  Cycles hopCycles = 0;   ///< interconnect cycles (both directions)
  Cycles retryCycles = 0; ///< backoff paid before failing over
  NodeId node = 0;        ///< controller that served the request
  bool remote = false;
  bool rerouted = false;  ///< home controller was down; served elsewhere
};

/// Runtime health of one memory controller, driven by fault::FaultEngine
/// (or directly by tests). Default-constructed = fully healthy.
struct ControllerHealth {
  bool up = true;
  /// Multiplies channel occupancy (>= 1; degraded service rate).
  double serviceScale = 1.0;
  /// Per-request probability of a transient ECC retry, with its latency.
  double eccProbability = 0.0;
  Cycles eccPenalty = 0;
};

/// One serviced transfer as seen at the controller, for observers.
struct RequestObservation {
  Cycles arrival = 0;    ///< when the request reached the controller stage
  Cycles start = 0;      ///< when its channel began the transfer
  Cycles service = 0;    ///< channel occupancy of the transfer
  Cycles queueWait = 0;  ///< total queueing delay (bus + link + channel)
  NodeId node = 0;
  bool remote = false;
  bool rowHit = false;
  bool writeback = false;  ///< non-blocking writeback vs. demand fill
  bool background = false; ///< injected interfering transfer (fault plan)
};

/// Instrumentation hook the memory system calls once per serviced
/// transfer (demand request or writeback). Implemented by the simulator's
/// observability adapter; the memory system itself stays obs-agnostic.
class MemoryObserver {
 public:
  virtual ~MemoryObserver() = default;
  virtual void onTransfer(const RequestObservation& observation) = 0;
};

class MemorySystem {
 public:
  /// Bounded retry-with-backoff budget paid by a demand request that
  /// arrives while its home controller is down (models the timeout +
  /// retry sequence before the failover kicks in): the request waits
  /// dramLatency << attempt for each attempt before failing over.
  static constexpr int kFailoverRetries = 2;

  /// `activeNodes` are the controllers backing the current run's pages
  /// (the paper activates controllers with the sockets that own them);
  /// `nodeWeights` (optional, one per active node) are the active core
  /// counts used by the proportional-interleave placement.
  MemorySystem(const topology::TopologyMap& topo, const MemoryConfig& config,
               std::vector<NodeId> activeNodes,
               std::vector<int> nodeWeights = {});

  /// Issues a blocking demand read/fill for `core` at time `now`.
  /// `now` must be nondecreasing across calls (event-ordered).
  RequestTiming request(Cycles now, CoreId core, Addr addr);

  /// Posts a non-blocking writeback (dirty LLC eviction).
  void writeback(Cycles now, CoreId core, Addr addr);

  // Degraded-mode control (driven by fault::FaultEngine or tests) --------

  /// Marks a controller down/up. While down, demand requests whose pages
  /// it backs pay a bounded retry-with-backoff penalty and fail over to
  /// the nearest healthy active controller; writebacks and injected
  /// background traffic reroute (or drop) without the retry penalty.
  void setControllerUp(NodeId node, bool up);
  /// Scales the controller's channel occupancy (>= 1; 1 = healthy).
  void setControllerServiceScale(NodeId node, double scale);
  /// Arms (probability > 0) or clears (probability == 0) transient
  /// ECC-retry latency spikes on the controller.
  void setControllerEcc(NodeId node, double probability, Cycles penalty);
  [[nodiscard]] const ControllerHealth& controllerHealth(NodeId node) const;
  /// Active controllers currently up.
  [[nodiscard]] int healthyActiveControllers() const noexcept;

  /// Injects one interfering transfer at `node` (fault-plan background
  /// traffic). Occupies channel bandwidth like a writeback; dropped when
  /// the controller is down. `now` obeys the same monotonicity contract
  /// as request().
  void injectBackground(Cycles now, NodeId node, Addr addr);

  [[nodiscard]] const ControllerStats& controllerStats(NodeId node) const;
  [[nodiscard]] int controllers() const noexcept { return nControllers_; }

  /// Total demand requests across controllers.
  [[nodiscard]] std::uint64_t totalRequests() const noexcept;

  /// Total queue-resource reservations performed (channel + bus + link),
  /// across demand requests, writebacks, retries and background traffic.
  /// A pure function of the simulated schedule — deterministic — and the
  /// simulator's "controller ticks" hot-path counter.
  [[nodiscard]] std::uint64_t reservationOps() const noexcept {
    return reservationOps_;
  }

  /// Attaches (or detaches, with nullptr) a per-transfer observer. The
  /// observer must outlive the memory system or be detached first.
  void setObserver(MemoryObserver* observer) noexcept {
    observer_ = observer;
  }

 private:
  struct Bus {
    Cycles freeAt = 0;
    Cycles busy = 0;
  };

  static constexpr Addr kNoRow = ~Addr{0};

  struct ChannelGrant {
    Cycles start = 0;    ///< when the channel begins the transfer
    Cycles service = 0;  ///< channel occupancy
    bool rowHit = false;
  };

  /// Routes the request to its address-striped channel/bank, applies the
  /// row-buffer state and reserves the channel of controller `node`.
  ChannelGrant reserveChannel(NodeId node, Addr addr, Cycles arrival);

  [[nodiscard]] Cycles drawService(Cycles mean);

  /// Reserves the interconnect path between two nodes for `transfers`
  /// 64 B messages; returns the queueing delay before the first transfer.
  Cycles reserveLink(NodeId a, NodeId b, int hops, Cycles arrival,
                     int transfers);

  /// Failover target for traffic homed on the down node `original`:
  /// the healthy active controller nearest to `requester` (fewest hops,
  /// lowest id on ties). Throws ContractViolation if none is healthy.
  [[nodiscard]] NodeId failoverNode(NodeId requester, NodeId original) const;

  [[nodiscard]] int hopsBetween(NodeId a, NodeId b) const noexcept {
    return hops_[static_cast<std::size_t>(a) *
                     static_cast<std::size_t>(nControllers_) +
                 static_cast<std::size_t>(b)];
  }

  const topology::TopologyMap& topo_;
  MemoryConfig config_;
  PagePlacement placement_;

  // Struct-of-arrays resource tables (DESIGN.md §14): the per-request path
  // touches exactly one channel free-at slot, one open-row register, one
  // stats block and one health block. Keeping each kind in its own flat,
  // cache-line-aligned array means a request touches a handful of hot
  // lines instead of striding through interleaved per-controller structs
  // of vectors-of-vectors.
  int nControllers_ = 0;
  std::uint32_t channelsPerController_ = 1;
  std::uint32_t banksPerChannel_ = 1;
  FastDiv rowBytesDiv_;   ///< addr -> row number
  FastDiv channelsDiv_;   ///< row % / div channelsPerController_
  FastDiv banksDiv_;      ///< (row / channels) % banksPerChannel_
  CacheAlignedVector<Cycles> channelFreeAt_;  ///< [ctrl * cpc + ch]
  CacheAlignedVector<Addr> openRow_;  ///< [(ctrl * cpc + ch) * bpc + bank]
  std::vector<ControllerStats> stats_;      ///< per controller
  std::vector<ControllerHealth> health_;    ///< per controller
  CacheAlignedVector<Bus> buses_;  ///< one per socket; UMA only
  CacheAlignedVector<Cycles> linkFreeAt_;  ///< [a * n + b], a <= b; NUMA only

  // Spec constants and topology lookups hoisted out of the request path.
  Cycles busServiceCycles_ = 0;
  Cycles linkServiceCycles_ = 0;
  Cycles hopCycles_ = 0;
  Cycles dramLatency_ = 0;
  Cycles rowHitServiceCycles_ = 0;
  Cycles rowMissServiceCycles_ = 0;
  std::vector<NodeId> homeNodeOf_;   ///< per core
  std::vector<SocketId> socketOf_;   ///< per core
  std::vector<int> hops_;            ///< [a * controllers + b]

  Rng rng_;
  MemoryObserver* observer_ = nullptr;
  Cycles lastNow_ = 0;  ///< monotonicity check
  std::uint64_t reservationOps_ = 0;
};

}  // namespace occm::mem
