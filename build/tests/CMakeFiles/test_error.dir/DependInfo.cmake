
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_error.cpp" "tests/CMakeFiles/test_error.dir/common/test_error.cpp.o" "gcc" "tests/CMakeFiles/test_error.dir/common/test_error.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/occm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/occm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/occm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/occm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/occm_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/occm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/occm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/occm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/occm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/occm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/occm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/occm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
