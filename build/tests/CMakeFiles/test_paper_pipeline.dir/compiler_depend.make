# Empty compiler generated dependencies file for test_paper_pipeline.
# This may be replaced when dependencies are built.
