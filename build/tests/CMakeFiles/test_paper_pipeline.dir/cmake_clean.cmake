file(REMOVE_RECURSE
  "CMakeFiles/test_paper_pipeline.dir/integration/test_paper_pipeline.cpp.o"
  "CMakeFiles/test_paper_pipeline.dir/integration/test_paper_pipeline.cpp.o.d"
  "test_paper_pipeline"
  "test_paper_pipeline.pdb"
  "test_paper_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
