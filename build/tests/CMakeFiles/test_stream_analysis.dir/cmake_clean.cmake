file(REMOVE_RECURSE
  "CMakeFiles/test_stream_analysis.dir/trace/test_stream_analysis.cpp.o"
  "CMakeFiles/test_stream_analysis.dir/trace/test_stream_analysis.cpp.o.d"
  "test_stream_analysis"
  "test_stream_analysis.pdb"
  "test_stream_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
