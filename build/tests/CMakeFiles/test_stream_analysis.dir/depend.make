# Empty dependencies file for test_stream_analysis.
# This may be replaced when dependencies are built.
