file(REMOVE_RECURSE
  "CMakeFiles/test_single_queue_sim.dir/queueing/test_single_queue_sim.cpp.o"
  "CMakeFiles/test_single_queue_sim.dir/queueing/test_single_queue_sim.cpp.o.d"
  "test_single_queue_sim"
  "test_single_queue_sim.pdb"
  "test_single_queue_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_queue_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
