file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_models.dir/queueing/test_models.cpp.o"
  "CMakeFiles/test_queueing_models.dir/queueing/test_models.cpp.o.d"
  "test_queueing_models"
  "test_queueing_models.pdb"
  "test_queueing_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
