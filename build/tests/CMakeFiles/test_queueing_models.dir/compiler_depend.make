# Empty compiler generated dependencies file for test_queueing_models.
# This may be replaced when dependencies are built.
