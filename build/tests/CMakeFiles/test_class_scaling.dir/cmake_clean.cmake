file(REMOVE_RECURSE
  "CMakeFiles/test_class_scaling.dir/workloads/test_class_scaling.cpp.o"
  "CMakeFiles/test_class_scaling.dir/workloads/test_class_scaling.cpp.o.d"
  "test_class_scaling"
  "test_class_scaling.pdb"
  "test_class_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
