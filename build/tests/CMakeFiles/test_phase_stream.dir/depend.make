# Empty dependencies file for test_phase_stream.
# This may be replaced when dependencies are built.
