file(REMOVE_RECURSE
  "CMakeFiles/test_phase_stream.dir/workloads/test_phase_stream.cpp.o"
  "CMakeFiles/test_phase_stream.dir/workloads/test_phase_stream.cpp.o.d"
  "test_phase_stream"
  "test_phase_stream.pdb"
  "test_phase_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
