# Empty dependencies file for test_burstiness.
# This may be replaced when dependencies are built.
