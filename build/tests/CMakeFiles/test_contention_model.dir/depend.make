# Empty dependencies file for test_contention_model.
# This may be replaced when dependencies are built.
