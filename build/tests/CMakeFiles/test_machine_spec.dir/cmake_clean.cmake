file(REMOVE_RECURSE
  "CMakeFiles/test_machine_spec.dir/topology/test_machine_spec.cpp.o"
  "CMakeFiles/test_machine_spec.dir/topology/test_machine_spec.cpp.o.d"
  "test_machine_spec"
  "test_machine_spec.pdb"
  "test_machine_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
