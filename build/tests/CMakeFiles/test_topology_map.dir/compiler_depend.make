# Empty compiler generated dependencies file for test_topology_map.
# This may be replaced when dependencies are built.
