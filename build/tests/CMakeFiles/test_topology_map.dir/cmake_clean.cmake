file(REMOVE_RECURSE
  "CMakeFiles/test_topology_map.dir/topology/test_topology_map.cpp.o"
  "CMakeFiles/test_topology_map.dir/topology/test_topology_map.cpp.o.d"
  "test_topology_map"
  "test_topology_map.pdb"
  "test_topology_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
