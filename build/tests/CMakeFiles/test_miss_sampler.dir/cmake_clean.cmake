file(REMOVE_RECURSE
  "CMakeFiles/test_miss_sampler.dir/perf/test_miss_sampler.cpp.o"
  "CMakeFiles/test_miss_sampler.dir/perf/test_miss_sampler.cpp.o.d"
  "test_miss_sampler"
  "test_miss_sampler.pdb"
  "test_miss_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miss_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
