# Empty compiler generated dependencies file for test_miss_sampler.
# This may be replaced when dependencies are built.
