# Empty compiler generated dependencies file for test_run_profile.
# This may be replaced when dependencies are built.
