file(REMOVE_RECURSE
  "CMakeFiles/test_run_profile.dir/perf/test_run_profile.cpp.o"
  "CMakeFiles/test_run_profile.dir/perf/test_run_profile.cpp.o.d"
  "test_run_profile"
  "test_run_profile.pdb"
  "test_run_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
