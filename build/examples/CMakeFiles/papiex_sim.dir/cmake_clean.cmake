file(REMOVE_RECURSE
  "CMakeFiles/papiex_sim.dir/papiex_sim.cpp.o"
  "CMakeFiles/papiex_sim.dir/papiex_sim.cpp.o.d"
  "papiex_sim"
  "papiex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papiex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
