# Empty compiler generated dependencies file for papiex_sim.
# This may be replaced when dependencies are built.
