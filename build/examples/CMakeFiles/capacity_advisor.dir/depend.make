# Empty dependencies file for capacity_advisor.
# This may be replaced when dependencies are built.
