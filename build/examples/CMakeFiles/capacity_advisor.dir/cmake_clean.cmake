file(REMOVE_RECURSE
  "CMakeFiles/capacity_advisor.dir/capacity_advisor.cpp.o"
  "CMakeFiles/capacity_advisor.dir/capacity_advisor.cpp.o.d"
  "capacity_advisor"
  "capacity_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
