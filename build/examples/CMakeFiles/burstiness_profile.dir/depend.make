# Empty dependencies file for burstiness_profile.
# This may be replaced when dependencies are built.
