file(REMOVE_RECURSE
  "CMakeFiles/burstiness_profile.dir/burstiness_profile.cpp.o"
  "CMakeFiles/burstiness_profile.dir/burstiness_profile.cpp.o.d"
  "burstiness_profile"
  "burstiness_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstiness_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
