file(REMOVE_RECURSE
  "CMakeFiles/contention_sweep.dir/contention_sweep.cpp.o"
  "CMakeFiles/contention_sweep.dir/contention_sweep.cpp.o.d"
  "contention_sweep"
  "contention_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
