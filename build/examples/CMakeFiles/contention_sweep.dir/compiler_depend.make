# Empty compiler generated dependencies file for contention_sweep.
# This may be replaced when dependencies are built.
