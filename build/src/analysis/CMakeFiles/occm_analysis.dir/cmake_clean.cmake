file(REMOVE_RECURSE
  "CMakeFiles/occm_analysis.dir/csv.cpp.o"
  "CMakeFiles/occm_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/occm_analysis.dir/experiment.cpp.o"
  "CMakeFiles/occm_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/occm_analysis.dir/text_table.cpp.o"
  "CMakeFiles/occm_analysis.dir/text_table.cpp.o.d"
  "liboccm_analysis.a"
  "liboccm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
