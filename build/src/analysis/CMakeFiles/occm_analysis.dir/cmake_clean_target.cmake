file(REMOVE_RECURSE
  "liboccm_analysis.a"
)
