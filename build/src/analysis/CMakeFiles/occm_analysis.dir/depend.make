# Empty dependencies file for occm_analysis.
# This may be replaced when dependencies are built.
