file(REMOVE_RECURSE
  "CMakeFiles/occm_topology.dir/machine_spec.cpp.o"
  "CMakeFiles/occm_topology.dir/machine_spec.cpp.o.d"
  "CMakeFiles/occm_topology.dir/presets.cpp.o"
  "CMakeFiles/occm_topology.dir/presets.cpp.o.d"
  "CMakeFiles/occm_topology.dir/topology_map.cpp.o"
  "CMakeFiles/occm_topology.dir/topology_map.cpp.o.d"
  "liboccm_topology.a"
  "liboccm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
