# Empty compiler generated dependencies file for occm_topology.
# This may be replaced when dependencies are built.
