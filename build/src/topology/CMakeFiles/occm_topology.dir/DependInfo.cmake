
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/machine_spec.cpp" "src/topology/CMakeFiles/occm_topology.dir/machine_spec.cpp.o" "gcc" "src/topology/CMakeFiles/occm_topology.dir/machine_spec.cpp.o.d"
  "/root/repo/src/topology/presets.cpp" "src/topology/CMakeFiles/occm_topology.dir/presets.cpp.o" "gcc" "src/topology/CMakeFiles/occm_topology.dir/presets.cpp.o.d"
  "/root/repo/src/topology/topology_map.cpp" "src/topology/CMakeFiles/occm_topology.dir/topology_map.cpp.o" "gcc" "src/topology/CMakeFiles/occm_topology.dir/topology_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
