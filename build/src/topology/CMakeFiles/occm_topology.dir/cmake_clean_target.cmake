file(REMOVE_RECURSE
  "liboccm_topology.a"
)
