file(REMOVE_RECURSE
  "liboccm_queueing.a"
)
