# Empty dependencies file for occm_queueing.
# This may be replaced when dependencies are built.
