file(REMOVE_RECURSE
  "CMakeFiles/occm_queueing.dir/models.cpp.o"
  "CMakeFiles/occm_queueing.dir/models.cpp.o.d"
  "CMakeFiles/occm_queueing.dir/single_queue_sim.cpp.o"
  "CMakeFiles/occm_queueing.dir/single_queue_sim.cpp.o.d"
  "liboccm_queueing.a"
  "liboccm_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
