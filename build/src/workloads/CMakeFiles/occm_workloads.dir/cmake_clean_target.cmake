file(REMOVE_RECURSE
  "liboccm_workloads.a"
)
