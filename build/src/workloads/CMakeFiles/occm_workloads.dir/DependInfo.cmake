
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cg.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/cg.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/cg.cpp.o.d"
  "/root/repo/src/workloads/ep.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/ep.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/ep.cpp.o.d"
  "/root/repo/src/workloads/ft.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/ft.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/ft.cpp.o.d"
  "/root/repo/src/workloads/is.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/is.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/is.cpp.o.d"
  "/root/repo/src/workloads/phase_stream.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/phase_stream.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/phase_stream.cpp.o.d"
  "/root/repo/src/workloads/sp.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/sp.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/sp.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/workload.cpp.o.d"
  "/root/repo/src/workloads/x264.cpp" "src/workloads/CMakeFiles/occm_workloads.dir/x264.cpp.o" "gcc" "src/workloads/CMakeFiles/occm_workloads.dir/x264.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/occm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
