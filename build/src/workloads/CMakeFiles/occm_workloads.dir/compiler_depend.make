# Empty compiler generated dependencies file for occm_workloads.
# This may be replaced when dependencies are built.
