file(REMOVE_RECURSE
  "CMakeFiles/occm_workloads.dir/cg.cpp.o"
  "CMakeFiles/occm_workloads.dir/cg.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/ep.cpp.o"
  "CMakeFiles/occm_workloads.dir/ep.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/ft.cpp.o"
  "CMakeFiles/occm_workloads.dir/ft.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/is.cpp.o"
  "CMakeFiles/occm_workloads.dir/is.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/phase_stream.cpp.o"
  "CMakeFiles/occm_workloads.dir/phase_stream.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/sp.cpp.o"
  "CMakeFiles/occm_workloads.dir/sp.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/workload.cpp.o"
  "CMakeFiles/occm_workloads.dir/workload.cpp.o.d"
  "CMakeFiles/occm_workloads.dir/x264.cpp.o"
  "CMakeFiles/occm_workloads.dir/x264.cpp.o.d"
  "liboccm_workloads.a"
  "liboccm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
