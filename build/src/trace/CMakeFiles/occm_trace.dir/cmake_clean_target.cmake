file(REMOVE_RECURSE
  "liboccm_trace.a"
)
