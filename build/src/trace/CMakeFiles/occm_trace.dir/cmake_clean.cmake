file(REMOVE_RECURSE
  "CMakeFiles/occm_trace.dir/stream_analysis.cpp.o"
  "CMakeFiles/occm_trace.dir/stream_analysis.cpp.o.d"
  "liboccm_trace.a"
  "liboccm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
