# Empty compiler generated dependencies file for occm_trace.
# This may be replaced when dependencies are built.
