# Empty dependencies file for occm_mem.
# This may be replaced when dependencies are built.
