file(REMOVE_RECURSE
  "CMakeFiles/occm_mem.dir/memory_system.cpp.o"
  "CMakeFiles/occm_mem.dir/memory_system.cpp.o.d"
  "liboccm_mem.a"
  "liboccm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
