file(REMOVE_RECURSE
  "liboccm_mem.a"
)
