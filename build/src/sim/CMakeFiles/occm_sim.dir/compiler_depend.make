# Empty compiler generated dependencies file for occm_sim.
# This may be replaced when dependencies are built.
