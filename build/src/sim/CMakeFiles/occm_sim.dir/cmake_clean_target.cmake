file(REMOVE_RECURSE
  "liboccm_sim.a"
)
