file(REMOVE_RECURSE
  "CMakeFiles/occm_sim.dir/machine_sim.cpp.o"
  "CMakeFiles/occm_sim.dir/machine_sim.cpp.o.d"
  "liboccm_sim.a"
  "liboccm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
