file(REMOVE_RECURSE
  "liboccm_core.a"
)
