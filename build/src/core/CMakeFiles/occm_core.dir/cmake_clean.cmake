file(REMOVE_RECURSE
  "CMakeFiles/occm_core.dir/burstiness.cpp.o"
  "CMakeFiles/occm_core.dir/burstiness.cpp.o.d"
  "CMakeFiles/occm_core.dir/contention_model.cpp.o"
  "CMakeFiles/occm_core.dir/contention_model.cpp.o.d"
  "CMakeFiles/occm_core.dir/speedup.cpp.o"
  "CMakeFiles/occm_core.dir/speedup.cpp.o.d"
  "liboccm_core.a"
  "liboccm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
