
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/burstiness.cpp" "src/core/CMakeFiles/occm_core.dir/burstiness.cpp.o" "gcc" "src/core/CMakeFiles/occm_core.dir/burstiness.cpp.o.d"
  "/root/repo/src/core/contention_model.cpp" "src/core/CMakeFiles/occm_core.dir/contention_model.cpp.o" "gcc" "src/core/CMakeFiles/occm_core.dir/contention_model.cpp.o.d"
  "/root/repo/src/core/speedup.cpp" "src/core/CMakeFiles/occm_core.dir/speedup.cpp.o" "gcc" "src/core/CMakeFiles/occm_core.dir/speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/occm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/occm_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
