# Empty compiler generated dependencies file for occm_core.
# This may be replaced when dependencies are built.
