file(REMOVE_RECURSE
  "liboccm_perf.a"
)
