file(REMOVE_RECURSE
  "CMakeFiles/occm_perf.dir/run_profile.cpp.o"
  "CMakeFiles/occm_perf.dir/run_profile.cpp.o.d"
  "liboccm_perf.a"
  "liboccm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
