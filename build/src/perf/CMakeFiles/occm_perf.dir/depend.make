# Empty dependencies file for occm_perf.
# This may be replaced when dependencies are built.
