file(REMOVE_RECURSE
  "liboccm_sched.a"
)
