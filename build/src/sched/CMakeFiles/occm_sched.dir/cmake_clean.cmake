file(REMOVE_RECURSE
  "CMakeFiles/occm_sched.dir/affinity.cpp.o"
  "CMakeFiles/occm_sched.dir/affinity.cpp.o.d"
  "liboccm_sched.a"
  "liboccm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
