# Empty compiler generated dependencies file for occm_sched.
# This may be replaced when dependencies are built.
