# Empty compiler generated dependencies file for occm_cache.
# This may be replaced when dependencies are built.
