file(REMOVE_RECURSE
  "liboccm_cache.a"
)
