file(REMOVE_RECURSE
  "CMakeFiles/occm_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/occm_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/occm_cache.dir/set_assoc_cache.cpp.o"
  "CMakeFiles/occm_cache.dir/set_assoc_cache.cpp.o.d"
  "liboccm_cache.a"
  "liboccm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
