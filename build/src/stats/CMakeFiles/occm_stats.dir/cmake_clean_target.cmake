file(REMOVE_RECURSE
  "liboccm_stats.a"
)
