# Empty compiler generated dependencies file for occm_stats.
# This may be replaced when dependencies are built.
