file(REMOVE_RECURSE
  "CMakeFiles/occm_stats.dir/distribution.cpp.o"
  "CMakeFiles/occm_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/occm_stats.dir/regression.cpp.o"
  "CMakeFiles/occm_stats.dir/regression.cpp.o.d"
  "CMakeFiles/occm_stats.dir/summary.cpp.o"
  "CMakeFiles/occm_stats.dir/summary.cpp.o.d"
  "liboccm_stats.a"
  "liboccm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
