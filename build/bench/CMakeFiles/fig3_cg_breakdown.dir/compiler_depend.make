# Empty compiler generated dependencies file for fig3_cg_breakdown.
# This may be replaced when dependencies are built.
