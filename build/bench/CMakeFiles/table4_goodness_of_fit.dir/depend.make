# Empty dependencies file for table4_goodness_of_fit.
# This may be replaced when dependencies are built.
