file(REMOVE_RECURSE
  "CMakeFiles/table4_goodness_of_fit.dir/table4_goodness_of_fit.cpp.o"
  "CMakeFiles/table4_goodness_of_fit.dir/table4_goodness_of_fit.cpp.o.d"
  "table4_goodness_of_fit"
  "table4_goodness_of_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_goodness_of_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
