# Empty dependencies file for fig4_burstiness.
# This may be replaced when dependencies are built.
