file(REMOVE_RECURSE
  "CMakeFiles/fig4_burstiness.dir/fig4_burstiness.cpp.o"
  "CMakeFiles/fig4_burstiness.dir/fig4_burstiness.cpp.o.d"
  "fig4_burstiness"
  "fig4_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
