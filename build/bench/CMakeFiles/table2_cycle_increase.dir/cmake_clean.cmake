file(REMOVE_RECURSE
  "CMakeFiles/table2_cycle_increase.dir/table2_cycle_increase.cpp.o"
  "CMakeFiles/table2_cycle_increase.dir/table2_cycle_increase.cpp.o.d"
  "table2_cycle_increase"
  "table2_cycle_increase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cycle_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
