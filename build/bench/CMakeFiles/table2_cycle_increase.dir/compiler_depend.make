# Empty compiler generated dependencies file for table2_cycle_increase.
# This may be replaced when dependencies are built.
