file(REMOVE_RECURSE
  "CMakeFiles/fig5_model_high_contention.dir/fig5_model_high_contention.cpp.o"
  "CMakeFiles/fig5_model_high_contention.dir/fig5_model_high_contention.cpp.o.d"
  "fig5_model_high_contention"
  "fig5_model_high_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_model_high_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
