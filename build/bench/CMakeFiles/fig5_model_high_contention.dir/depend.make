# Empty dependencies file for fig5_model_high_contention.
# This may be replaced when dependencies are built.
