# Empty dependencies file for fig6_model_low_contention.
# This may be replaced when dependencies are built.
