file(REMOVE_RECURSE
  "CMakeFiles/fig6_model_low_contention.dir/fig6_model_low_contention.cpp.o"
  "CMakeFiles/fig6_model_low_contention.dir/fig6_model_low_contention.cpp.o.d"
  "fig6_model_low_contention"
  "fig6_model_low_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_model_low_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
