#!/usr/bin/env bash
# Crash-containment smoke test: run an isolated (--isolate) checkpointed
# sweep, SIGKILL one of its forked attempt children mid-run, and assert
# the sweep still finishes with exit 0 — the killed attempt must come back
# as a recovered RunFailure{crash}, the checkpoint must stay valid JSON,
# and a rerun must resume from it.
#
# Usage: crash_smoke.sh <path-to-contention_sweep-binary>
set -euo pipefail

bin="${1:?usage: crash_smoke.sh <contention_sweep binary>}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
ckpt="$workdir/sweep.json"

"$bin" CG.S --workers=1 --isolate --checkpoint="$ckpt" \
  >"$workdir/first.log" 2>&1 &
pid=$!

# Hunt for a forked attempt child and SIGKILL it. The serial pool keeps at
# most one child alive at a time; polling fast enough catches one of the
# 24 per-core-count attempts unless the machine is absurdly quick.
killed=0
for _ in $(seq 1 600); do
  if ! kill -0 "$pid" 2>/dev/null; then
    break  # sweep already finished
  fi
  child="$(pgrep -P "$pid" | head -n1 || true)"
  if [ -n "$child" ] && kill -KILL "$child" 2>/dev/null; then
    killed=1
    break
  fi
  sleep 0.05
done

status=0
wait "$pid" || status=$?

if [ "$killed" -eq 0 ]; then
  echo "SKIP: sweep completed before a child could be killed" >&2
  exit 0
fi

# The murdered attempt must be contained: retried, recovered, sweep green.
if [ "$status" -ne 0 ]; then
  echo "FAIL: sweep with a SIGKILLed child exited $status, expected 0" >&2
  cat "$workdir/first.log" >&2
  exit 1
fi
grep -q "recovered" "$workdir/first.log" || {
  echo "FAIL: no recovered-crash diagnostic in output" >&2
  cat "$workdir/first.log" >&2
  exit 1
}

[ -s "$ckpt" ] || {
  echo "FAIL: no checkpoint flushed at $ckpt" >&2
  exit 1
}
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$ckpt" 2>/dev/null || {
  echo "FAIL: flushed checkpoint is not valid JSON" >&2
  exit 1
}

# Resume: the completed sweep restores wholesale and still exits 0.
"$bin" CG.S --workers=1 --isolate --checkpoint="$ckpt" \
  >"$workdir/second.log" 2>&1 || {
  echo "FAIL: resumed sweep exited nonzero" >&2
  cat "$workdir/second.log" >&2
  exit 1
}
grep -q "restored from checkpoint" "$workdir/second.log" || {
  echo "FAIL: resumed sweep did not restore from the checkpoint" >&2
  cat "$workdir/second.log" >&2
  exit 1
}

echo "OK: SIGKILLed child contained as recovered crash, checkpoint valid, resume clean"
