#!/usr/bin/env bash
# Capacity-advisor service smoke test, three acts against the real
# binaries over loopback TCP:
#
#   1. Overload: a healthy tier-1 answer, then a cold pipelined burst
#      against a 3-slot admission queue — the overflow must shed with a
#      typed queue-full reason and the admitted requests must still be
#      answered at tier 1.
#   2. Forced degradation: --degrade-depth=1 downgrades a burst to
#      analytic tier-0 answers flagged degraded=queue-depth.
#   3. Drain: SIGTERM mid-load — the server stops accepting, finishes the
#      admitted work, reports "drained: yes", and exits 0.
#
# Usage: serve_smoke.sh <advisor_server binary> <advisor_client binary>
set -euo pipefail

server="${1:?usage: serve_smoke.sh <advisor_server> <advisor_client>}"
client="${2:?usage: serve_smoke.sh <advisor_server> <advisor_client>}"
workdir="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_for_port() {  # wait_for_port <logfile> -> echoes the bound port
  local log="$1" port=""
  for _ in $(seq 1 100); do
    port="$(grep -oE 'listening on port [0-9]+' "$log" 2>/dev/null \
            | grep -oE '[0-9]+' || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "FAIL: server never bound a port" >&2
                      cat "$log" >&2; exit 1; }
  echo "$port"
}

# --- Act 1: healthy answer, then typed queue-full sheds -------------------

"$server" --port=0 --queue-capacity=3 --degrade-depth=0 --workers=2 \
  >"$workdir/server1.log" 2>&1 &
srv=$!
port="$(wait_for_port "$workdir/server1.log")"

"$client" --port="$port" --workload=EP.S --machine=test-numa4 \
  >"$workdir/healthy.log" 2>&1 || {
  echo "FAIL: healthy request failed" >&2
  cat "$workdir/healthy.log" >&2; exit 1; }
grep -q 'ok tier=1' "$workdir/healthy.log" || {
  echo "FAIL: healthy request was not served at tier 1" >&2
  cat "$workdir/healthy.log" >&2; exit 1; }

# Cold key, pipelined past the queue bound: 3 admitted, 5 shed.
"$client" --port="$port" --count=8 --workload=CG.S --machine=test-numa4 \
  >"$workdir/burst.log" 2>&1 || {
  echo "FAIL: burst client failed outright" >&2
  cat "$workdir/burst.log" >&2; exit 1; }
grep -q 'shed queue-full' "$workdir/burst.log" || {
  echo "FAIL: no typed queue-full shed in the burst" >&2
  cat "$workdir/burst.log" >&2; exit 1; }
grep -q 'ok tier=1' "$workdir/burst.log" || {
  echo "FAIL: admitted burst requests were not refined" >&2
  cat "$workdir/burst.log" >&2; exit 1; }

kill -TERM "$srv"
status=0; wait "$srv" || status=$?
[ "$status" -eq 0 ] || { echo "FAIL: act-1 server exited $status" >&2
                         cat "$workdir/server1.log" >&2; exit 1; }
grep -q 'drained: yes' "$workdir/server1.log" || {
  echo "FAIL: act-1 server did not drain" >&2
  cat "$workdir/server1.log" >&2; exit 1; }
grep -qE 'shed queue-full *[1-9]' "$workdir/server1.log" || {
  echo "FAIL: server counters disagree with the observed sheds" >&2
  cat "$workdir/server1.log" >&2; exit 1; }

# --- Act 2: forced degradation --------------------------------------------

"$server" --port=0 --degrade-depth=1 --workers=1 \
  >"$workdir/server2.log" 2>&1 &
srv=$!
port="$(wait_for_port "$workdir/server2.log")"

"$client" --port="$port" --count=6 --workload=EP.S --machine=test-numa4 \
  >"$workdir/degraded.log" 2>&1 || {
  echo "FAIL: degraded-burst client failed" >&2
  cat "$workdir/degraded.log" >&2; exit 1; }
grep -q 'degraded=queue-depth' "$workdir/degraded.log" || {
  echo "FAIL: burst was not degraded to tier 0" >&2
  cat "$workdir/degraded.log" >&2; exit 1; }

kill -TERM "$srv"
status=0; wait "$srv" || status=$?
[ "$status" -eq 0 ] || { echo "FAIL: act-2 server exited $status" >&2
                         cat "$workdir/server2.log" >&2; exit 1; }

# --- Act 3: SIGTERM drain mid-load ----------------------------------------

"$server" --port=0 --workers=1 >"$workdir/server3.log" 2>&1 &
srv=$!
port="$(wait_for_port "$workdir/server3.log")"

"$client" --port="$port" --count=4 --workload=CG.S --machine=test-numa4 \
  >"$workdir/drain.log" 2>&1 &
cli=$!
sleep 0.3  # let the burst get admitted before the drain fires
kill -TERM "$srv"

status=0; wait "$cli" || status=$?
[ "$status" -eq 0 ] || { echo "FAIL: in-flight client lost its answers" >&2
                         cat "$workdir/drain.log" >&2; exit 1; }
status=0; wait "$srv" || status=$?
[ "$status" -eq 0 ] || { echo "FAIL: draining server exited $status" >&2
                         cat "$workdir/server3.log" >&2; exit 1; }
grep -q 'drained: yes' "$workdir/server3.log" || {
  echo "FAIL: act-3 server did not report a clean drain" >&2
  cat "$workdir/server3.log" >&2; exit 1; }

echo "OK: overload sheds typed, degradation flagged, SIGTERM drained clean"
