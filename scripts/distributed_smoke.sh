#!/usr/bin/env bash
# Distributed-sweep smoke test, three acts:
#
#   1. Serial control: one in-process sweep, CSV + CRC-32 fingerprint.
#   2. Loopback fleet: a coordinator and three workers (one straggling,
#      one SIGKILLed mid-sweep). The dead worker's leases must re-dispatch
#      and the merged CSV must be byte-identical to the serial control.
#   3. Coordinator crash: SIGKILL the coordinator mid-sweep, restart it
#      from its checkpoint with a fresh fleet, and assert the resumed run
#      converges to the same bytes.
#
# Usage: distributed_smoke.sh <path-to-contention_sweep-binary>
set -euo pipefail

bin="${1:?usage: distributed_smoke.sh <contention_sweep binary>}"
workdir="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

workload="EP.S"

wait_for_port() {  # wait_for_port <logfile> -> echoes the bound port
  local log="$1" port=""
  for _ in $(seq 1 100); do
    port="$(grep -oE 'listening on port [0-9]+' "$log" 2>/dev/null \
            | grep -oE '[0-9]+' || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "FAIL: coordinator never bound a port" >&2
                      cat "$log" >&2; exit 1; }
  echo "$port"
}

fingerprint() {  # fingerprint <logfile>
  grep -oE 'csv fingerprint: [0-9a-f]+' "$1" | grep -oE '[0-9a-f]+$'
}

# --- Act 1: serial control ------------------------------------------------

"$bin" "$workload" --workers=2 --csv="$workdir/serial.csv" \
  >"$workdir/serial.log" 2>&1
serial_fp="$(fingerprint "$workdir/serial.log")"
[ -n "$serial_fp" ] || { echo "FAIL: serial run printed no fingerprint" >&2
                         cat "$workdir/serial.log" >&2; exit 1; }

# --- Act 2: fleet with a straggler and a murdered worker ------------------

"$bin" "$workload" --listen=0 --grace=30 --csv="$workdir/fleet.csv" \
  >"$workdir/coord.log" 2>&1 &
coord=$!
port="$(wait_for_port "$workdir/coord.log")"

"$bin" --connect="127.0.0.1:$port" --worker-id=steady \
  >"$workdir/w1.log" 2>&1 &
"$bin" --connect="127.0.0.1:$port" --worker-id=straggler --straggle-ms=100 \
  >"$workdir/w2.log" 2>&1 &
"$bin" --connect="127.0.0.1:$port" --worker-id=victim --straggle-ms=100 \
  >"$workdir/w3.log" 2>&1 &
victim=$!

# Let the victim pick up a lease, then SIGKILL it. The coordinator must
# notice the dropped connection and re-dispatch its in-flight task.
sleep 0.4
kill -KILL "$victim" 2>/dev/null || true

status=0
wait "$coord" || status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: fleet coordinator exited $status" >&2
  cat "$workdir/coord.log" >&2
  exit 1
fi

fleet_fp="$(fingerprint "$workdir/coord.log")"
if [ "$fleet_fp" != "$serial_fp" ]; then
  echo "FAIL: fleet fingerprint $fleet_fp != serial $serial_fp" >&2
  diff "$workdir/serial.csv" "$workdir/fleet.csv" >&2 || true
  exit 1
fi
cmp -s "$workdir/serial.csv" "$workdir/fleet.csv" || {
  echo "FAIL: fingerprints agree but CSV bytes differ (crc collision?)" >&2
  exit 1
}
grep -qE 'fleet: [0-9]+ worker' "$workdir/coord.log" || {
  echo "FAIL: coordinator reported no fleet stats" >&2
  cat "$workdir/coord.log" >&2
  exit 1
}

# --- Act 3: coordinator crash + checkpoint resume -------------------------

ckpt="$workdir/dist.json"
"$bin" "$workload" --listen=0 --grace=30 --checkpoint="$ckpt" \
  >"$workdir/coord2.log" 2>&1 &
coord=$!
port="$(wait_for_port "$workdir/coord2.log")"

"$bin" --connect="127.0.0.1:$port" --worker-id=alpha --straggle-ms=60 \
  >"$workdir/w4.log" 2>&1 &
w4=$!
"$bin" --connect="127.0.0.1:$port" --worker-id=beta --straggle-ms=60 \
  >"$workdir/w5.log" 2>&1 &
w5=$!

# Wait for some results to be committed to the checkpoint, then murder
# the coordinator mid-sweep.
killed=0
for _ in $(seq 1 200); do
  if ! kill -0 "$coord" 2>/dev/null; then
    break  # finished before we struck — resume below restores wholesale
  fi
  if [ -s "$ckpt" ]; then
    kill -KILL "$coord" 2>/dev/null && killed=1
    break
  fi
  sleep 0.05
done
wait "$coord" 2>/dev/null || true
kill "$w4" "$w5" 2>/dev/null || true
wait "$w4" 2>/dev/null || true
wait "$w5" 2>/dev/null || true

[ -s "$ckpt" ] || { echo "FAIL: no checkpoint written before the crash" >&2
                    exit 1; }

"$bin" "$workload" --listen=0 --grace=30 --checkpoint="$ckpt" \
  --csv="$workdir/resumed.csv" >"$workdir/coord3.log" 2>&1 &
coord=$!
port="$(wait_for_port "$workdir/coord3.log")"
"$bin" --connect="127.0.0.1:$port" --worker-id=gamma \
  >"$workdir/w6.log" 2>&1 &

status=0
wait "$coord" || status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: resumed coordinator exited $status" >&2
  cat "$workdir/coord3.log" >&2
  exit 1
fi
if [ "$killed" -eq 1 ]; then
  grep -q "restored from checkpoint" "$workdir/coord3.log" || {
    echo "FAIL: resumed run did not restore from the checkpoint" >&2
    cat "$workdir/coord3.log" >&2
    exit 1
  }
fi
resumed_fp="$(fingerprint "$workdir/coord3.log")"
if [ "$resumed_fp" != "$serial_fp" ]; then
  echo "FAIL: resumed fingerprint $resumed_fp != serial $serial_fp" >&2
  diff "$workdir/serial.csv" "$workdir/resumed.csv" >&2 || true
  exit 1
fi

echo "OK: fleet with worker SIGKILL and coordinator crash+resume both" \
     "reproduced the serial CSV bit-for-bit (crc $serial_fp)"
