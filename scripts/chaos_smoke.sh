#!/usr/bin/env bash
# Chaos drill smoke test, four acts against the real binaries over
# loopback TCP (DESIGN.md §16):
#
#   1. Serial control: one in-process sweep, CSV + CRC-32 fingerprint.
#   2. Chaos fleet: a coordinator and two workers whose connections
#      replay seeded fault schedules (drops, dup/reorder, corruption,
#      stalls, partitions, half-closes). The merged CSV must still be
#      byte-identical to the serial control — chaos may change who
#      computes what, never what comes out.
#   3. Chaos server: an advisor server wearing a seeded chaos transport
#      serves a client burst, then SIGTERM — it must report a clean
#      typed drain, never hang.
#   4. Chaos-off overhead check: with no chaos flags the binaries print
#      no chaos banner and reproduce the control bytes — the wrapper is
#      provably not installed when not asked for.
#
# Usage: chaos_smoke.sh <contention_sweep> <advisor_server> <advisor_client>
set -euo pipefail

sweep="${1:?usage: chaos_smoke.sh <contention_sweep> <advisor_server> <advisor_client>}"
server="${2:?usage: chaos_smoke.sh <contention_sweep> <advisor_server> <advisor_client>}"
client="${3:?usage: chaos_smoke.sh <contention_sweep> <advisor_server> <advisor_client>}"
workdir="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

workload="EP.S"

wait_for_port() {  # wait_for_port <logfile> -> echoes the bound port
  local log="$1" port=""
  for _ in $(seq 1 100); do
    port="$(grep -oE 'listening on port [0-9]+' "$log" 2>/dev/null \
            | grep -oE '[0-9]+' || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "FAIL: no port bound" >&2; cat "$log" >&2
                      exit 1; }
  echo "$port"
}

fingerprint() {  # fingerprint <logfile>
  grep -oE 'csv fingerprint: [0-9a-f]+' "$1" | grep -oE '[0-9a-f]+$'
}

# --- Act 1: serial control ------------------------------------------------

"$sweep" "$workload" --workers=2 --csv="$workdir/serial.csv" \
  >"$workdir/serial.log" 2>&1
serial_fp="$(fingerprint "$workdir/serial.log")"
[ -n "$serial_fp" ] || { echo "FAIL: serial run printed no fingerprint" >&2
                         cat "$workdir/serial.log" >&2; exit 1; }

# --- Act 2: chaos fleet ---------------------------------------------------
# Tight lease timing so lost frames are re-dispatched (and hopeless tasks
# abandoned to the local pool) at drill pace, not production pace.

"$sweep" "$workload" --listen=0 --grace=2 --lease=0.5 --max-expiries=3 \
  --csv="$workdir/chaos.csv" >"$workdir/coord.log" 2>&1 &
coord=$!
port="$(wait_for_port "$workdir/coord.log")"

"$sweep" --connect="127.0.0.1:$port" --worker-id=chaos-a --chaos-seed=7 \
  --idle-timeout-ms=400 >"$workdir/w1.log" 2>&1 &
"$sweep" --connect="127.0.0.1:$port" --worker-id=chaos-b --chaos-seed=12 \
  --idle-timeout-ms=400 >"$workdir/w2.log" 2>&1 &

status=0
wait "$coord" || status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: chaos coordinator exited $status" >&2
  cat "$workdir/coord.log" >&2
  exit 1
fi
chaos_fp="$(fingerprint "$workdir/coord.log")"
if [ "$chaos_fp" != "$serial_fp" ]; then
  echo "FAIL: chaos fleet fingerprint $chaos_fp != serial $serial_fp" >&2
  diff "$workdir/serial.csv" "$workdir/chaos.csv" >&2 || true
  exit 1
fi
cmp -s "$workdir/serial.csv" "$workdir/chaos.csv" || {
  echo "FAIL: fingerprints agree but CSV bytes differ (crc collision?)" >&2
  exit 1
}
grep -q 'chaos plan:' "$workdir/w1.log" || {
  echo "FAIL: chaos worker did not log its resolved plan" >&2
  cat "$workdir/w1.log" >&2; exit 1; }
# Whatever chaos did, the workers themselves must exit typed.
wait || true
for w in w1 w2; do
  grep -q 'stopped: ' "$workdir/$w.log" || {
    echo "FAIL: worker $w did not report a typed stop reason" >&2
    cat "$workdir/$w.log" >&2; exit 1; }
done

# --- Act 3: chaos server drains typed -------------------------------------

"$server" --port=0 --workers=1 --chaos-seed=5 --stall-timeout-ms=300 \
  >"$workdir/server.log" 2>&1 &
srv=$!
port="$(wait_for_port "$workdir/server.log")"
grep -q 'chaos plan:' "$workdir/server.log" || {
  echo "FAIL: chaos server did not log its resolved plan" >&2
  cat "$workdir/server.log" >&2; exit 1; }

# Chaos may shed, stall or sever these sessions; each client must still
# exit on its own (typed give-up), and nonzero exits are expected.
for c in 1 2 3; do
  timeout 30 "$client" --port="$port" --count=3 --workload=EP.S \
    --machine=test-numa4 --recv-timeout-ms=2000 \
    >"$workdir/client$c.log" 2>&1 || true
done

kill -TERM "$srv"
status=0; wait "$srv" || status=$?
[ "$status" -eq 0 ] || { echo "FAIL: chaos server exited $status" >&2
                         cat "$workdir/server.log" >&2; exit 1; }
grep -q 'drained: yes' "$workdir/server.log" || {
  echo "FAIL: chaos server did not drain" >&2
  cat "$workdir/server.log" >&2; exit 1; }

# --- Act 4: chaos off means chaos absent ----------------------------------

"$sweep" "$workload" --workers=2 --csv="$workdir/off.csv" \
  >"$workdir/off.log" 2>&1
grep -q 'chaos plan:' "$workdir/off.log" && {
  echo "FAIL: chaos banner printed without any chaos flag" >&2
  cat "$workdir/off.log" >&2; exit 1; }
cmp -s "$workdir/serial.csv" "$workdir/off.csv" || {
  echo "FAIL: chaos-off run diverged from the serial control" >&2
  exit 1
}

echo "OK: chaos fleet converged bit-for-bit (crc $serial_fp), chaos" \
     "server drained typed, chaos-off path clean"
