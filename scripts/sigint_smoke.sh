#!/usr/bin/env bash
# SIGINT-mid-sweep smoke test: interrupt a checkpointed contention sweep,
# assert it exits gracefully (130) with a valid checkpoint on disk, then
# rerun the same command and assert it resumes from that checkpoint.
#
# Usage: sigint_smoke.sh <path-to-contention_sweep-binary>
set -euo pipefail

bin="${1:?usage: sigint_smoke.sh <contention_sweep binary>}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
ckpt="$workdir/sweep.json"

# Serial pool keeps per-run wall time long enough that the interrupt
# reliably lands mid-sweep; retry with a longer fuse if the sweep wins
# the race and completes first.
for fuse in 2 1; do
  rm -f "$ckpt"
  "$bin" CG.S --workers=1 --checkpoint="$ckpt" >"$workdir/first.log" 2>&1 &
  pid=$!
  sleep "$fuse"
  if kill -INT "$pid" 2>/dev/null; then
    status=0
    wait "$pid" || status=$?
    if [ "$status" -eq 130 ]; then
      break
    fi
    echo "FAIL: interrupted sweep exited $status, expected 130" >&2
    cat "$workdir/first.log" >&2
    exit 1
  fi
  # The sweep finished before the signal; try again with a shorter fuse.
  wait "$pid" || true
  status=done
done

if [ "$status" = done ]; then
  echo "SKIP: sweep completed before SIGINT could land" >&2
  exit 0
fi

grep -q "stopped early" "$workdir/first.log" || {
  echo "FAIL: no graceful-stop diagnostic in output" >&2
  cat "$workdir/first.log" >&2
  exit 1
}

[ -s "$ckpt" ] || {
  echo "FAIL: no checkpoint flushed at $ckpt" >&2
  exit 1
}
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$ckpt" 2>/dev/null || {
  echo "FAIL: flushed checkpoint is not valid JSON" >&2
  exit 1
}

# Resume: must restore the completed subset and finish the sweep.
"$bin" CG.S --workers=1 --checkpoint="$ckpt" >"$workdir/second.log" 2>&1 || {
  echo "FAIL: resumed sweep exited nonzero" >&2
  cat "$workdir/second.log" >&2
  exit 1
}
grep -q "restored from checkpoint" "$workdir/second.log" || {
  echo "FAIL: resumed sweep did not restore from the checkpoint" >&2
  cat "$workdir/second.log" >&2
  exit 1
}

echo "OK: graceful SIGINT stop, valid checkpoint, successful resume"
