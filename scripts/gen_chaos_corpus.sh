#!/usr/bin/env bash
# Regenerates the chaos seed corpora under fuzz/corpus/ by replaying
# seeded fault schedules over canonical protocol frames with the
# gen_chaos_corpus binary. The corpora give fuzz_wire_message and
# fuzz_serve_message the exact wire shapes the chaos drills produce —
# regenerate when the chaos schedule derivation or the canonical
# protocol frames change, and say so in the commit. See DESIGN.md §16.
#
# Usage: gen_chaos_corpus.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
bin="$build/tests/gen_chaos_corpus"

if [ ! -x "$bin" ]; then
  echo "gen_chaos_corpus binary not found at $bin — build it first:" >&2
  echo "  cmake --build $build --target gen_chaos_corpus" >&2
  exit 1
fi

"$bin" "$repo/fuzz/corpus"
echo "corpora written under $repo/fuzz/corpus/{wire_message,serve_message}"
