#!/usr/bin/env bash
# Regenerates the golden-fingerprint corpus backing the equivalence suite
# (tests/equivalence/golden_fingerprints.txt) by replaying the full grid
# with the gen_golden binary. The corpus pins the simulator's exact
# output; regenerate it ONLY when simulated behavior is meant to change,
# and say so in the commit that does. See DESIGN.md §14.
#
# Usage: gen_golden.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
bin="$build/tests/gen_golden"
out="$repo/tests/equivalence/golden_fingerprints.txt"

if [ ! -x "$bin" ]; then
  echo "gen_golden binary not found at $bin — build it first:" >&2
  echo "  cmake --build $build --target gen_golden" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
"$bin" "$tmp"

if [ -f "$out" ] && cmp -s "$tmp" "$out"; then
  echo "corpus unchanged: $out"
else
  mv "$tmp" "$out"
  trap - EXIT
  echo "corpus written: $out"
  echo "If fingerprints changed, simulated output changed — justify the"
  echo "regeneration in the commit message."
fi
