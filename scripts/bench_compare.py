#!/usr/bin/env python3
"""Validate and compare BENCH_*.json reports (see DESIGN.md section 12).

Usage:
  bench_compare.py REPORT.json
      Validate the schema of one report.
  bench_compare.py BASELINE.json CURRENT.json [--threshold=0.25]
      [--strict-perf]
      Validate both reports, then compare every grid point present in
      both (matched on program/topology/pool_size):
        - fingerprints and the deterministic totals (sim_cycles,
          requests, core_counts_run) must match exactly -> hard error;
        - median wall time regressing by more than --threshold (fraction,
          default 0.25) is reported; a warning by default (the two
          reports usually come from different hosts), a hard error with
          --strict-perf.

Exit codes: 0 ok, 1 validation/comparison failure, 2 usage error.
Stdlib only; no third-party dependencies.
"""

import json
import sys

SCHEMA = "occm-bench-v1"

REPORT_KEYS = {
    "schema": str,
    "generator": str,
    "quick": bool,
    "repeats": int,
    "warmup": int,
    "compiler": str,
    "build_type": str,
    "obs_enabled": bool,
    "hardware_threads": int,
    "points": list,
}

POINT_KEYS = {
    "program": str,
    "topology": str,
    "pool_size": int,
    "core_counts_run": int,
    "repeats": int,
    "fingerprint": str,
    "sim_cycles": int,
    "requests": int,
    "wall_ms": dict,
    "sim_cycles_per_sec": (int, float),
    "requests_per_sec": (int, float),
    "phases": list,
}

STAT_KEYS = {"median", "iqr", "min", "max"}

PHASE_KEYS = {
    "name": str,
    "calls": int,
    "wall_ns": int,
    "cpu_ns": int,
}


def fail(message):
    print("error: " + message, file=sys.stderr)
    sys.exit(1)


def check_keys(obj, spec, where):
    for key, kind in spec.items():
        if key not in obj:
            fail("%s: missing key %r" % (where, key))
        value = obj[key]
        # bool is an int subclass in Python; reject it where int is meant.
        if kind is int and isinstance(value, bool):
            fail("%s: key %r must be an integer, got a boolean" % (where, key))
        if not isinstance(value, kind):
            fail("%s: key %r has the wrong type (%s)"
                 % (where, key, type(value).__name__))
    for key in obj:
        if key not in spec:
            fail("%s: unknown key %r" % (where, key))


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        fail("%s: %s" % (path, err))
    if not isinstance(report, dict):
        fail("%s: top level is not an object" % path)
    check_keys(report, REPORT_KEYS, path)
    if report["schema"] != SCHEMA:
        fail("%s: schema is %r, want %r" % (path, report["schema"], SCHEMA))
    seen = set()
    for i, point in enumerate(report["points"]):
        where = "%s points[%d]" % (path, i)
        if not isinstance(point, dict):
            fail(where + ": not an object")
        check_keys(point, POINT_KEYS, where)
        fp = point["fingerprint"]
        if len(fp) != 8 or any(c not in "0123456789abcdef" for c in fp):
            fail(where + ": fingerprint is not 8 lowercase hex digits")
        if set(point["wall_ms"]) != STAT_KEYS:
            fail(where + ": wall_ms must have exactly the keys "
                 + "/".join(sorted(STAT_KEYS)))
        for value in point["wall_ms"].values():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(where + ": wall_ms values must be numbers")
        for j, phase in enumerate(point["phases"]):
            check_keys(phase, PHASE_KEYS, "%s phases[%d]" % (where, j))
        key = (point["program"], point["topology"], point["pool_size"])
        if key in seen:
            fail(where + (": duplicate grid point %r" % (key,)))
        seen.add(key)
    return report


def point_index(report):
    return {(p["program"], p["topology"], p["pool_size"]): p
            for p in report["points"]}


def compare(baseline, current, threshold, strict_perf):
    base_points = point_index(baseline)
    cur_points = point_index(current)
    common = sorted(set(base_points) & set(cur_points))
    if not common:
        fail("the two reports share no grid points; nothing was compared")

    errors = 0
    regressions = 0
    for key in common:
        name = "%s@%s/pool%d" % key
        base, cur = base_points[key], cur_points[key]
        for field in ("fingerprint", "sim_cycles", "requests",
                      "core_counts_run"):
            if base[field] != cur[field]:
                print("FAIL %s: %s differs (baseline %r, current %r) — "
                      "deterministic output changed"
                      % (name, field, base[field], cur[field]))
                errors += 1
        base_ms = base["wall_ms"]["median"]
        cur_ms = cur["wall_ms"]["median"]
        if base_ms > 0 and cur_ms > base_ms * (1.0 + threshold):
            ratio = cur_ms / base_ms - 1.0
            print("%s %s: median wall %.2f ms -> %.2f ms (+%.0f%%, "
                  "threshold %.0f%%)"
                  % ("FAIL" if strict_perf else "WARN", name, base_ms,
                     cur_ms, 100.0 * ratio, 100.0 * threshold))
            regressions += 1

    print("compared %d common point(s): %d determinism error(s), "
          "%d wall-time regression(s)" % (len(common), errors, regressions))
    if errors or (strict_perf and regressions):
        sys.exit(1)


def main(argv):
    paths = []
    threshold = 0.25
    strict_perf = False
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            try:
                threshold = float(arg.split("=", 1)[1])
            except ValueError:
                print("bad --threshold value", file=sys.stderr)
                sys.exit(2)
            if not 0.0 < threshold < 10.0:
                print("--threshold must be in (0, 10)", file=sys.stderr)
                sys.exit(2)
        elif arg == "--strict-perf":
            strict_perf = True
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        else:
            paths.append(arg)
    if len(paths) not in (1, 2):
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    reports = [validate(path) for path in paths]
    for path in paths:
        print("ok: %s validates against %s" % (path, SCHEMA))
    if len(reports) == 2:
        compare(reports[0], reports[1], threshold, strict_perf)


if __name__ == "__main__":
    main(sys.argv)
